package trace

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/vfs"
)

// writeChunk is the largest single write emitted when an application
// rewrites a whole file (applications write through bounded buffers).
const writeChunk = 1 << 20

// scaleInt scales n by s, keeping at least 1.
func scaleInt(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 1 {
		return 1
	}
	return v
}

// fill writes pseudo-random bytes from rng into p.
func fill(rng *rand.Rand, p []byte) {
	rng.Read(p)
}

// emitFullWrite streams data to path as a sequence of bounded writes.
func emitFullWrite(emit Emit, path string, data []byte, at time.Duration) error {
	for off := 0; off < len(data); off += writeChunk {
		end := off + writeChunk
		if end > len(data) {
			end = len(data)
		}
		if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: path, Off: int64(off), Data: data[off:end]}, at); err != nil {
			return err
		}
	}
	return nil
}

// AppendConfig parameterizes the append-write artificial trace.
type AppendConfig struct {
	Path      string
	Writes    int           // number of append operations
	WriteSize int           // bytes per append
	Interval  time.Duration // logical time between appends
	Seed      int64
}

// PaperAppendConfig is the paper's append trace: 40 appends of ~800 KB, 15 s
// apart, final size 32 MB.
func PaperAppendConfig() AppendConfig {
	return AppendConfig{
		Path:      "append.dat",
		Writes:    40,
		WriteSize: 800 << 10,
		Interval:  15 * time.Second,
		Seed:      101,
	}
}

// Scaled returns the config with sizes and counts scaled by s.
func (c AppendConfig) Scaled(s float64) AppendConfig {
	c.Writes = scaleInt(c.Writes, s)
	c.WriteSize = scaleInt(c.WriteSize, s)
	return c
}

// Append builds the append-write trace.
func Append(c AppendConfig) *Trace {
	total := int64(c.Writes) * int64(c.WriteSize)
	return &Trace{
		Name:        "append",
		Desc:        fmt.Sprintf("%d appends x %d B", c.Writes, c.WriteSize),
		UpdateBytes: total,
		WriteBytes:  total,
		Setup: func(fs vfs.FS) error {
			return fs.Create(c.Path)
		},
		Run: func(emit Emit) error {
			rng := rand.New(rand.NewSource(c.Seed))
			buf := make([]byte, c.WriteSize)
			var off int64
			at := time.Duration(0)
			for i := 0; i < c.Writes; i++ {
				at += c.Interval
				fill(rng, buf)
				if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: c.Path, Off: off, Data: buf}, at); err != nil {
					return err
				}
				off += int64(len(buf))
				if err := emit(vfs.Op{Kind: vfs.OpClose, Path: c.Path}, at); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// RandomConfig parameterizes the random-write artificial trace.
type RandomConfig struct {
	Path      string
	FileSize  int // pre-existing file size
	Writes    int
	WriteSize int
	Interval  time.Duration
	Seed      int64
}

// PaperRandomConfig is the paper's random-write trace: 40 writes of 1010
// bytes into a 20 MB file, 15 s apart.
func PaperRandomConfig() RandomConfig {
	return RandomConfig{
		Path:      "random.dat",
		FileSize:  20 << 20,
		Writes:    40,
		WriteSize: 1010,
		Interval:  15 * time.Second,
		Seed:      102,
	}
}

// Scaled returns the config with sizes and counts scaled by s.
func (c RandomConfig) Scaled(s float64) RandomConfig {
	c.FileSize = scaleInt(c.FileSize, s)
	c.Writes = scaleInt(c.Writes, s)
	return c
}

// Random builds the random-write trace.
func Random(c RandomConfig) *Trace {
	total := int64(c.Writes) * int64(c.WriteSize)
	return &Trace{
		Name:        "random",
		Desc:        fmt.Sprintf("%d writes x %d B into %d MB file", c.Writes, c.WriteSize, c.FileSize>>20),
		UpdateBytes: total,
		WriteBytes:  total,
		Setup: func(fs vfs.FS) error {
			rng := rand.New(rand.NewSource(c.Seed))
			if err := fs.Create(c.Path); err != nil {
				return err
			}
			return writeAll(fs, c.Path, rng, c.FileSize)
		},
		Run: func(emit Emit) error {
			// Offsets use a distinct stream so Setup and Run stay aligned
			// with the same seed.
			rng := rand.New(rand.NewSource(c.Seed + 1))
			buf := make([]byte, c.WriteSize)
			at := time.Duration(0)
			for i := 0; i < c.Writes; i++ {
				at += c.Interval
				fill(rng, buf)
				maxOff := c.FileSize - c.WriteSize
				if maxOff < 0 {
					maxOff = 0
				}
				off := int64(rng.Intn(maxOff + 1))
				if err := emit(vfs.Op{Kind: vfs.OpWrite, Path: c.Path, Off: off, Data: buf}, at); err != nil {
					return err
				}
				if err := emit(vfs.Op{Kind: vfs.OpClose, Path: c.Path}, at); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// writeAll fills path with size pseudo-random bytes in bounded chunks.
func writeAll(fs vfs.FS, path string, rng *rand.Rand, size int) error {
	buf := make([]byte, writeChunk)
	for off := 0; off < size; off += writeChunk {
		n := size - off
		if n > writeChunk {
			n = writeChunk
		}
		fill(rng, buf[:n])
		if err := fs.WriteAt(path, int64(off), buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

package storagefault

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// SimDisk is an in-memory file system with an explicit crash model. Every
// file tracks two contents: what the page cache holds (volatile, the view
// all reads and writes see) and what the last File.Sync made durable. Every
// directory tracks two entry tables the same way: names appear, move and
// disappear in the volatile table immediately, and reach the durable table
// only on SyncDir. Directory creation is durable immediately (journaled
// metadata). Crash collapses each to its durable half.
//
// Every mutating call is also appended to an ordered trace; Fork(k) rebuilds
// a disk from the first k trace entries, so a harness can place a crash
// after *every* IO the workload performed — the ALICE exploration pattern.
// All methods are safe for concurrent use; trace order is the serialization
// order the disk's own mutex imposed, i.e. the order the "kernel" saw.
type SimDisk struct {
	mu      sync.Mutex
	inodes  map[int]*simInode
	nextIno int
	dirs    map[string]*simDir
	trace   []traceOp
	syncOps int
}

type simInode struct {
	data    []byte // volatile: what reads see
	durable []byte // what a crash preserves
}

type simDir struct {
	live    map[string]simEnt
	durable map[string]simEnt
}

type simEnt struct {
	ino   int
	isDir bool
}

// trace op kinds. Read-only calls are not traced: they create no crash
// points.
const (
	tCreate byte = iota + 1
	tWrite
	tSync
	tTruncate
	tRename
	tRemove
	tLink
	tMkdir
	tSyncDir
)

type traceOp struct {
	kind      byte
	name, dst string
	ino       int
	off, size int64
	data      []byte
}

// NewSimDisk returns an empty disk with an existing root directory.
func NewSimDisk() *SimDisk {
	d := &SimDisk{inodes: make(map[int]*simInode), dirs: make(map[string]*simDir)}
	d.dirs["."] = newSimDir()
	return d
}

func newSimDir() *simDir {
	return &simDir{live: make(map[string]simEnt), durable: make(map[string]simEnt)}
}

func simClean(name string) string {
	return path.Clean(strings.ReplaceAll(name, string(os.PathSeparator), "/"))
}

func simParent(name string) (dir, base string) {
	dir, base = path.Split(name)
	dir = path.Clean(dir)
	if dir == "" {
		dir = "."
	}
	return dir, base
}

// Ops returns the number of trace entries so far: the exclusive upper bound
// for Fork prefixes.
func (d *SimDisk) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.trace)
}

// SyncOps returns how many File.Sync calls the trace holds — the matrix
// size for fsync-failure-point exploration.
func (d *SimDisk) SyncOps() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncOps
}

// Fork returns an independent disk rebuilt from the first k trace entries.
// The fork carries the truncated trace, so a workload can continue on it.
func (d *SimDisk) Fork(k int) *SimDisk {
	d.mu.Lock()
	defer d.mu.Unlock()
	if k < 0 || k > len(d.trace) {
		panic(fmt.Sprintf("storagefault: Fork(%d) outside trace of %d ops", k, len(d.trace)))
	}
	f := NewSimDisk()
	for _, op := range d.trace[:k] {
		f.apply(op)
	}
	f.trace = append(f.trace, d.trace[:k]...)
	for _, op := range f.trace {
		if op.kind == tSync {
			f.syncOps++
		}
	}
	return f
}

// Crash discards everything volatile: file contents revert to their last
// fsynced state, directory tables to their last SyncDir. Open handles on
// the old disk must be abandoned.
func (d *SimDisk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ino := range d.inodes {
		ino.data = append([]byte(nil), ino.durable...)
	}
	for _, dir := range d.dirs {
		dir.live = make(map[string]simEnt, len(dir.durable))
		for k, v := range dir.durable {
			dir.live[k] = v
		}
	}
}

// CrashTorn is Crash, except files whose volatile content extends their
// durable content keep a seeded-random prefix of the un-fsynced suffix —
// the torn-tail shape a power cut leaves in an append-only log, which
// CRC-framed recovery must absorb.
func (d *SimDisk) CrashTorn(seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	for _, ino := range d.inodes {
		vol, dur := ino.data, ino.durable
		if len(vol) > len(dur) && bytes.Equal(vol[:len(dur)], dur) {
			keep := len(dur) + rng.Intn(len(vol)-len(dur)+1)
			ino.data = append([]byte(nil), vol[:keep]...)
		} else {
			ino.data = append([]byte(nil), dur...)
		}
	}
	for _, dir := range d.dirs {
		dir.live = make(map[string]simEnt, len(dir.durable))
		for k, v := range dir.durable {
			dir.live[k] = v
		}
	}
}

// record appends op to the trace (d.mu held).
func (d *SimDisk) record(op traceOp) {
	if len(op.data) > 0 {
		op.data = append([]byte(nil), op.data...)
	}
	d.trace = append(d.trace, op)
	if op.kind == tSync {
		d.syncOps++
	}
}

// apply mutates state for op without tracing (Fork replay). Every op was
// legal when recorded, so apply trusts it.
func (d *SimDisk) apply(op traceOp) {
	switch op.kind {
	case tCreate:
		d.inodes[op.ino] = &simInode{}
		if op.ino >= d.nextIno {
			d.nextIno = op.ino + 1
		}
		dir, base := simParent(op.name)
		d.dirs[dir].live[base] = simEnt{ino: op.ino}
	case tWrite:
		ino := d.inodes[op.ino]
		end := op.off + int64(len(op.data))
		if int64(len(ino.data)) < end {
			grown := make([]byte, end)
			copy(grown, ino.data)
			ino.data = grown
		}
		copy(ino.data[op.off:], op.data)
	case tSync:
		ino := d.inodes[op.ino]
		ino.durable = append([]byte(nil), ino.data...)
	case tTruncate:
		ino := d.inodes[op.ino]
		if op.size <= int64(len(ino.data)) {
			ino.data = append([]byte(nil), ino.data[:op.size]...)
		} else {
			grown := make([]byte, op.size)
			copy(grown, ino.data)
			ino.data = grown
		}
	case tRename:
		od, ob := simParent(op.name)
		nd, nb := simParent(op.dst)
		ent := d.dirs[od].live[ob]
		delete(d.dirs[od].live, ob)
		d.dirs[nd].live[nb] = ent
	case tRemove:
		dir, base := simParent(op.name)
		ent := d.dirs[dir].live[base]
		delete(d.dirs[dir].live, base)
		if ent.isDir {
			delete(d.dirs, op.name)
		}
	case tLink:
		od, ob := simParent(op.name)
		nd, nb := simParent(op.dst)
		d.dirs[nd].live[nb] = d.dirs[od].live[ob]
	case tMkdir:
		dir, base := simParent(op.name)
		ent := simEnt{isDir: true}
		d.dirs[dir].live[base] = ent
		d.dirs[dir].durable[base] = ent
		d.dirs[op.name] = newSimDir()
	case tSyncDir:
		dir := d.dirs[op.name]
		dir.durable = make(map[string]simEnt, len(dir.live))
		for k, v := range dir.live {
			dir.durable[k] = v
		}
	}
}

// lookup resolves name to its live entry (d.mu held).
func (d *SimDisk) lookup(name string) (simEnt, bool) {
	if name == "." {
		return simEnt{isDir: true}, true
	}
	dir, base := simParent(name)
	tab, ok := d.dirs[dir]
	if !ok {
		return simEnt{}, false
	}
	ent, ok := tab.live[base]
	return ent, ok
}

func simErr(op, name string, err error) error {
	return &os.PathError{Op: op, Path: name, Err: err}
}

// simFile is an open handle.
type simFile struct {
	d      *SimDisk
	ino    int
	name   string
	pos    int64
	append bool
	wr     bool
	closed bool
}

// OpenFile implements FS.
func (d *SimDisk) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(name)
	if ok && ent.isDir {
		return nil, simErr("open", name, fmt.Errorf("is a directory"))
	}
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, simErr("open", name, os.ErrNotExist)
		}
		dir, _ := simParent(name)
		if _, dirOK := d.dirs[dir]; !dirOK {
			return nil, simErr("open", name, os.ErrNotExist)
		}
		ino := d.nextIno
		d.nextIno++
		op := traceOp{kind: tCreate, name: name, ino: ino}
		d.record(op)
		d.apply(op)
		ent = simEnt{ino: ino}
	} else if flag&os.O_TRUNC != 0 {
		op := traceOp{kind: tTruncate, ino: ent.ino, size: 0}
		d.record(op)
		d.apply(op)
	}
	return &simFile{
		d:      d,
		ino:    ent.ino,
		name:   name,
		append: flag&os.O_APPEND != 0,
		wr:     flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0,
	}, nil
}

func (f *simFile) inode() (*simInode, error) {
	if f.closed {
		return nil, simErr("file", f.name, os.ErrClosed)
	}
	return f.d.inodes[f.ino], nil
}

func (f *simFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	ino, err := f.inode()
	if err != nil {
		return 0, err
	}
	off := f.pos
	if f.append {
		off = int64(len(ino.data))
	}
	op := traceOp{kind: tWrite, ino: f.ino, off: off, data: p}
	f.d.record(op)
	f.d.apply(op)
	f.pos = off + int64(len(p))
	return len(p), nil
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if _, err := f.inode(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, simErr("writeat", f.name, fmt.Errorf("negative offset"))
	}
	op := traceOp{kind: tWrite, ino: f.ino, off: off, data: p}
	f.d.record(op)
	f.d.apply(op)
	return len(p), nil
}

func (f *simFile) Read(p []byte) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	ino, err := f.inode()
	if err != nil {
		return 0, err
	}
	if f.pos >= int64(len(ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, ino.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	ino, err := f.inode()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) Seek(off int64, whence int) (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	ino, err := f.inode()
	if err != nil {
		return 0, err
	}
	switch whence {
	case 0:
		f.pos = off
	case 1:
		f.pos += off
	case 2:
		f.pos = int64(len(ino.data)) + off
	}
	if f.pos < 0 {
		return 0, simErr("seek", f.name, fmt.Errorf("negative position"))
	}
	return f.pos, nil
}

func (f *simFile) Sync() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if _, err := f.inode(); err != nil {
		return err
	}
	op := traceOp{kind: tSync, ino: f.ino, name: f.name}
	f.d.record(op)
	f.d.apply(op)
	return nil
}

func (f *simFile) Truncate(size int64) error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if _, err := f.inode(); err != nil {
		return err
	}
	if size < 0 {
		return simErr("truncate", f.name, fmt.Errorf("negative size"))
	}
	op := traceOp{kind: tTruncate, ino: f.ino, size: size}
	f.d.record(op)
	f.d.apply(op)
	return nil
}

func (f *simFile) Size() (int64, error) {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	ino, err := f.inode()
	if err != nil {
		return 0, err
	}
	return int64(len(ino.data)), nil
}

func (f *simFile) Close() error {
	f.d.mu.Lock()
	defer f.d.mu.Unlock()
	if f.closed {
		return simErr("close", f.name, os.ErrClosed)
	}
	f.closed = true
	return nil
}

// ReadFile implements FS.
func (d *SimDisk) ReadFile(name string) ([]byte, error) {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(name)
	if !ok {
		return nil, simErr("open", name, os.ErrNotExist)
	}
	if ent.isDir {
		return nil, simErr("read", name, fmt.Errorf("is a directory"))
	}
	return append([]byte(nil), d.inodes[ent.ino].data...), nil
}

// Rename implements FS. Directory renames are not supported (no persistence
// site performs one).
func (d *SimDisk) Rename(oldName, newName string) error {
	oldName, newName = simClean(oldName), simClean(newName)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(oldName)
	if !ok {
		return simErr("rename", oldName, os.ErrNotExist)
	}
	if ent.isDir {
		return simErr("rename", oldName, fmt.Errorf("directory rename not supported"))
	}
	nd, _ := simParent(newName)
	if _, dirOK := d.dirs[nd]; !dirOK {
		return simErr("rename", newName, os.ErrNotExist)
	}
	if dst, ok := d.lookup(newName); ok && dst.isDir {
		return simErr("rename", newName, fmt.Errorf("destination is a directory"))
	}
	op := traceOp{kind: tRename, name: oldName, dst: newName}
	d.record(op)
	d.apply(op)
	return nil
}

// Remove implements FS.
func (d *SimDisk) Remove(name string) error {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(name)
	if !ok {
		return simErr("remove", name, os.ErrNotExist)
	}
	if ent.isDir && len(d.dirs[name].live) > 0 {
		return simErr("remove", name, fmt.Errorf("directory not empty"))
	}
	op := traceOp{kind: tRemove, name: name}
	d.record(op)
	d.apply(op)
	return nil
}

// Link implements FS: newName becomes a second name for oldName's inode.
func (d *SimDisk) Link(oldName, newName string) error {
	oldName, newName = simClean(oldName), simClean(newName)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(oldName)
	if !ok {
		return simErr("link", oldName, os.ErrNotExist)
	}
	if ent.isDir {
		return simErr("link", oldName, fmt.Errorf("cannot link a directory"))
	}
	if _, exists := d.lookup(newName); exists {
		return simErr("link", newName, os.ErrExist)
	}
	nd, _ := simParent(newName)
	if _, dirOK := d.dirs[nd]; !dirOK {
		return simErr("link", newName, os.ErrNotExist)
	}
	op := traceOp{kind: tLink, name: oldName, dst: newName}
	d.record(op)
	d.apply(op)
	return nil
}

// Truncate implements FS.
func (d *SimDisk) Truncate(name string, size int64) error {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(name)
	if !ok || ent.isDir {
		return simErr("truncate", name, os.ErrNotExist)
	}
	if size < 0 {
		return simErr("truncate", name, fmt.Errorf("negative size"))
	}
	op := traceOp{kind: tTruncate, ino: ent.ino, size: size}
	d.record(op)
	d.apply(op)
	return nil
}

// Mkdir implements FS.
func (d *SimDisk) Mkdir(name string, _ os.FileMode) error {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mkdirLocked(name)
}

func (d *SimDisk) mkdirLocked(name string) error {
	if name == "." {
		return nil
	}
	if _, exists := d.lookup(name); exists {
		return simErr("mkdir", name, os.ErrExist)
	}
	dir, _ := simParent(name)
	if _, dirOK := d.dirs[dir]; !dirOK {
		return simErr("mkdir", name, os.ErrNotExist)
	}
	op := traceOp{kind: tMkdir, name: name}
	d.record(op)
	d.apply(op)
	return nil
}

// MkdirAll implements FS.
func (d *SimDisk) MkdirAll(name string, _ os.FileMode) error {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	if name == "." {
		return nil
	}
	parts := strings.Split(name, "/")
	cur := ""
	for _, p := range parts {
		if cur == "" {
			cur = p
		} else {
			cur = cur + "/" + p
		}
		if ent, ok := d.lookup(cur); ok {
			if !ent.isDir {
				return simErr("mkdir", cur, fmt.Errorf("not a directory"))
			}
			continue
		}
		if err := d.mkdirLocked(cur); err != nil {
			return err
		}
	}
	return nil
}

// SyncDir implements FS: the dir's live entry table becomes durable.
func (d *SimDisk) SyncDir(dir string) error {
	dir = simClean(dir)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.dirs[dir]; !ok {
		return simErr("syncdir", dir, os.ErrNotExist)
	}
	op := traceOp{kind: tSyncDir, name: dir}
	d.record(op)
	d.apply(op)
	return nil
}

// Stat implements FS.
func (d *SimDisk) Stat(name string) (Info, error) {
	name = simClean(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.lookup(name)
	if !ok {
		return Info{}, simErr("stat", name, os.ErrNotExist)
	}
	if ent.isDir {
		return Info{IsDir: true}, nil
	}
	return Info{Size: int64(len(d.inodes[ent.ino].data))}, nil
}

// List implements FS.
func (d *SimDisk) List(dir string) ([]string, error) {
	dir = simClean(dir)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.dirs[dir]; !ok {
		return nil, nil
	}
	var out []string
	var walk func(cur, rel string)
	walk = func(cur, rel string) {
		for base, ent := range d.dirs[cur].live {
			childRel := base
			if rel != "" {
				childRel = rel + "/" + base
			}
			child := base
			if cur != "." {
				child = cur + "/" + base
			}
			if ent.isDir {
				walk(child, childRel)
			} else {
				out = append(out, childRel)
			}
		}
	}
	walk(dir, "")
	sort.Strings(out)
	return out, nil
}

var _ FS = (*SimDisk)(nil)

// Package storagefault is the storage dual of internal/faultinject: a
// file-IO interface that every persistence site in the repository writes
// through (the kvstore WAL and snapshots, the server push journal and
// SaveFile, undolog snapshots, and the vfs passthrough backend), with three
// interchangeable implementations:
//
//   - OS: direct passthrough to the real file system (the default —
//     production behavior, zero overhead beyond an interface call);
//   - Injector: a seeded, deterministic fault layer over any FS — fsync
//     failures with fsyncgate semantics (a failed Sync poisons the file:
//     retrying can never silently report clean), torn appends, an ENOSPC
//     byte budget, and read-side bit corruption;
//   - SimDisk: an in-memory disk with an explicit durability model (what
//     fsync promised vs what the page cache holds) and an ordered trace of
//     every mutating IO, so a harness can fork the disk at any trace prefix
//     and simulate a crash there (ALICE-style crash-point exploration).
//
// The durability model SimDisk implements is the strict POSIX one the
// crashsafe analyzer assumes: file content is durable only up to the last
// File.Sync; directory entries (create, rename, remove, link) are durable
// only after SyncDir on the parent; directory creation itself is durable
// immediately (journaled metadata, the behavior of every mainstream Linux
// file system). A crash discards everything volatile — which both loses
// un-fsynced data and "reorders" it relative to durable metadata, the two
// failure shapes that break naive write orderings.
package storagefault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Injected fault sentinels. Callers classify with errors.Is.
var (
	// ErrSyncFailed is the injected fsync failure itself.
	ErrSyncFailed = errors.New("storagefault: injected fsync failure")
	// ErrPoisoned reports an operation on a file whose earlier Sync failed.
	// Per fsyncgate, the kernel marks dirty pages clean after a failed
	// fsync, so a retry that reports success has silently lost data; the
	// injector forbids the retry outright.
	ErrPoisoned = errors.New("storagefault: file poisoned by earlier failed fsync")
	// ErrTorn is an injected partial append: a prefix of the write landed.
	ErrTorn = errors.New("storagefault: injected torn write")
	// ErrNoSpace is the injected ENOSPC.
	ErrNoSpace = errors.New("storagefault: injected ENOSPC")
)

// File is an open file handle. The subset of *os.File the persistence
// sites use; Size replaces Stat so implementations need not fake FileInfo.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Sync flushes the file's data to stable storage. After a Sync error
	// the handle's durability is unknown; fault-injecting implementations
	// poison the file (ErrPoisoned) rather than let a retry report clean.
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
}

// Info is the minimal stat result.
type Info struct {
	Size  int64
	IsDir bool
}

// FS is the file-system interface all persistence sites write through.
// Paths keep whatever convention the caller uses (the OS implementation
// passes them straight to the os package; SimDisk cleans them as
// slash-separated).
type FS interface {
	// OpenFile opens name with os.O_* flags. O_CREATE, O_TRUNC, O_APPEND,
	// O_RDONLY and O_WRONLY/O_RDWR are honored by every implementation.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	Link(oldName, newName string) error
	Truncate(name string, size int64) error
	Mkdir(name string, perm os.FileMode) error
	MkdirAll(name string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making completed renames and created
	// names in it durable. POSIX only guarantees a new or moved name
	// survives a crash once the parent directory's metadata is synced.
	SyncDir(dir string) error
	Stat(name string) (Info, error)
	// List returns the slash-relative paths of all regular files under
	// dir, sorted. A missing dir is not an error (empty result).
	List(dir string) ([]string, error)
}

// Create opens name for writing, truncating it if it exists (os.Create).
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open opens name read-only (os.Open).
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// OS is the passthrough FS: every call maps 1:1 onto the os package. It is
// the default everywhere a storagefault.FS is accepted, so production
// behavior is unchanged by the indirection.
var OS FS = osFS{}

type osFS struct{}

type osFile struct{ f *os.File }

func (o osFile) Read(p []byte) (int, error)                { return o.f.Read(p) }
func (o osFile) Write(p []byte) (int, error)               { return o.f.Write(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error)   { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error)  { return o.f.WriteAt(p, off) }
func (o osFile) Seek(off int64, whence int) (int64, error) { return o.f.Seek(off, whence) }
func (o osFile) Close() error                              { return o.f.Close() }
func (o osFile) Sync() error                               { return o.f.Sync() }
func (o osFile) Truncate(size int64) error                 { return o.f.Truncate(size) }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f: f}, nil
}

func (osFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (osFS) Rename(oldName, newName string) error      { return os.Rename(oldName, newName) }
func (osFS) Remove(name string) error                  { return os.Remove(name) }
func (osFS) Link(oldName, newName string) error        { return os.Link(oldName, newName) }
func (osFS) Truncate(name string, size int64) error    { return os.Truncate(name, size) }
func (osFS) Mkdir(name string, perm os.FileMode) error { return os.Mkdir(name, perm) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Stat(name string) (Info, error) {
	st, err := os.Stat(name)
	if err != nil {
		return Info{}, err
	}
	return Info{Size: st.Size(), IsDir: st.IsDir()}, nil
}

func (osFS) List(dir string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(dir, func(p string, de os.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		if de.Type().IsRegular() {
			rel, err := filepath.Rel(dir, p)
			if err != nil {
				return err
			}
			out = append(out, filepath.ToSlash(rel))
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

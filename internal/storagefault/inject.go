package storagefault

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
)

// Plan is a seeded, deterministic storage-fault schedule. Zero values mean
// "never": the zero Plan is a transparent passthrough. Ordinals are 1-based
// and count calls through the whole Injector, in the order its mutex
// serializes them.
type Plan struct {
	// Seed drives the torn-write split point and the corrupted bit
	// position. The same plan over the same workload injects the same
	// faults.
	Seed int64
	// FailSyncAt makes the Nth File.Sync fail with ErrSyncFailed and
	// poisons the file: every later Write or Sync on any handle for that
	// name fails with ErrPoisoned. That is the fsyncgate contract — after
	// a failed fsync the kernel has marked the dirty pages clean, so a
	// retry that reports success has silently dropped the data; the only
	// honest behaviors are "fail forever" or "rewrite from scratch".
	FailSyncAt int
	// TornWriteAt makes the Nth File.Write land only a seeded prefix and
	// return ErrTorn — the partial append a crash mid-write leaves.
	TornWriteAt int
	// WriteBudget, when positive, is the total bytes writable through the
	// injector before writes fail with ErrNoSpace (a full disk). The
	// write that crosses the budget lands partially, like a real ENOSPC.
	WriteBudget int64
	// CorruptReads flips one seeded bit in every non-empty read — the
	// latent media corruption the integrity scanner exists to catch.
	CorruptReads bool
}

// Stats counts what the injector actually did.
type Stats struct {
	Writes      int64
	Syncs       int64
	FailedSyncs int64
	TornWrites  int64
	NoSpaceErrs int64
	BitFlips    int64
	PoisonedOps int64
}

// Injector wraps an FS with the faults a Plan schedules. It is safe for
// concurrent use; fault ordinals follow its internal serialization order.
type Injector struct {
	inner FS
	plan  Plan

	mu       sync.Mutex
	rng      *rand.Rand
	written  int64
	stats    Stats
	poisoned map[string]bool
}

// NewInjector wraps inner with plan.
func NewInjector(inner FS, plan Plan) *Injector {
	return &Injector{
		inner:    inner,
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		poisoned: make(map[string]bool),
	}
}

// Inner returns the wrapped FS (crash harnesses fork and crash it).
func (in *Injector) Inner() FS { return in.inner }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Poisoned reports whether name's earlier Sync failed.
func (in *Injector) Poisoned(name string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.poisoned[name]
}

// corrupt flips one seeded bit of p in place (in.mu held).
func (in *Injector) corrupt(p []byte, n int) {
	if !in.plan.CorruptReads || n <= 0 {
		return
	}
	i := in.rng.Intn(n)
	p[i] ^= 1 << uint(in.rng.Intn(8))
	in.stats.BitFlips++
}

type injFile struct {
	in   *Injector
	f    File
	name string
}

// admitWrite applies the poison check, the torn-write schedule and the
// ENOSPC budget to a write of len(p) bytes, returning how many bytes to
// pass through and the error to report (nil = full write).
func (in *Injector) admitWrite(name string, n int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.poisoned[name] {
		in.stats.PoisonedOps++
		return 0, fmt.Errorf("write %s: %w", name, ErrPoisoned)
	}
	in.stats.Writes++
	if in.plan.TornWriteAt > 0 && in.stats.Writes == int64(in.plan.TornWriteAt) {
		in.stats.TornWrites++
		keep := 0
		if n > 0 {
			keep = in.rng.Intn(n)
		}
		in.written += int64(keep)
		return keep, fmt.Errorf("write %s: %w", name, ErrTorn)
	}
	if in.plan.WriteBudget > 0 {
		rem := in.plan.WriteBudget - in.written
		if rem < int64(n) {
			in.stats.NoSpaceErrs++
			keep := int(rem)
			if keep < 0 {
				keep = 0
			}
			in.written += int64(keep)
			return keep, fmt.Errorf("write %s: %w", name, ErrNoSpace)
		}
	}
	in.written += int64(n)
	return n, nil
}

func (jf *injFile) Write(p []byte) (int, error) {
	keep, ferr := jf.in.admitWrite(jf.name, len(p))
	if keep > 0 || ferr == nil {
		n, err := jf.f.Write(p[:keep])
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return keep, ferr
	}
	return len(p), nil
}

func (jf *injFile) WriteAt(p []byte, off int64) (int, error) {
	keep, ferr := jf.in.admitWrite(jf.name, len(p))
	if keep > 0 || ferr == nil {
		n, err := jf.f.WriteAt(p[:keep], off)
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return keep, ferr
	}
	return len(p), nil
}

func (jf *injFile) Sync() error {
	in := jf.in
	in.mu.Lock()
	if in.poisoned[jf.name] {
		in.stats.PoisonedOps++
		in.mu.Unlock()
		return fmt.Errorf("sync %s: %w", jf.name, ErrPoisoned)
	}
	in.stats.Syncs++
	if in.plan.FailSyncAt > 0 && in.stats.Syncs == int64(in.plan.FailSyncAt) {
		in.stats.FailedSyncs++
		in.poisoned[jf.name] = true
		in.mu.Unlock()
		// The inner Sync is deliberately not called: the dirty data never
		// reaches stable storage, exactly what a failed fsync means.
		return fmt.Errorf("sync %s: %w", jf.name, ErrSyncFailed)
	}
	in.mu.Unlock()
	return jf.f.Sync()
}

func (jf *injFile) Read(p []byte) (int, error) {
	n, err := jf.f.Read(p)
	jf.in.mu.Lock()
	jf.in.corrupt(p, n)
	jf.in.mu.Unlock()
	return n, err
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := jf.f.ReadAt(p, off)
	jf.in.mu.Lock()
	jf.in.corrupt(p, n)
	jf.in.mu.Unlock()
	return n, err
}

func (jf *injFile) Seek(off int64, whence int) (int64, error) { return jf.f.Seek(off, whence) }
func (jf *injFile) Truncate(size int64) error                 { return jf.f.Truncate(size) }
func (jf *injFile) Size() (int64, error)                      { return jf.f.Size() }
func (jf *injFile) Close() error                              { return jf.f.Close() }

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

// ReadFile implements FS (with read corruption when scheduled).
func (in *Injector) ReadFile(name string) ([]byte, error) {
	b, err := in.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	in.corrupt(b, len(b))
	in.mu.Unlock()
	return b, nil
}

// The namespace operations pass through untouched: the crash model for them
// lives in SimDisk, and the failure model in the Sync/Write paths above.

func (in *Injector) Rename(oldName, newName string) error { return in.inner.Rename(oldName, newName) }
func (in *Injector) Remove(name string) error             { return in.inner.Remove(name) }
func (in *Injector) Link(oldName, newName string) error   { return in.inner.Link(oldName, newName) }
func (in *Injector) Truncate(name string, size int64) error {
	return in.inner.Truncate(name, size)
}
func (in *Injector) Mkdir(name string, perm os.FileMode) error { return in.inner.Mkdir(name, perm) }
func (in *Injector) MkdirAll(name string, perm os.FileMode) error {
	return in.inner.MkdirAll(name, perm)
}
func (in *Injector) SyncDir(dir string) error          { return in.inner.SyncDir(dir) }
func (in *Injector) Stat(name string) (Info, error)    { return in.inner.Stat(name) }
func (in *Injector) List(dir string) ([]string, error) { return in.inner.List(dir) }

var _ FS = (*Injector)(nil)

package storagefault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSPassthroughRoundTrip exercises the default FS against a real
// directory: the indirection must behave exactly like the os package.
func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := OS.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "sub", "a.tmp")
	f, err := Create(OS, name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "sub", "a.txt")
	if err := OS.Rename(name, final); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(final)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	st, err := OS.Stat(final)
	if err != nil || st.Size != 5 || st.IsDir {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	files, err := OS.List(dir)
	if err != nil || len(files) != 1 || files[0] != "sub/a.txt" {
		t.Fatalf("List = %v, %v", files, err)
	}
}

// TestSimDiskCrashSemantics locks in the durability model: content is
// durable up to the last Sync, names up to the last SyncDir.
func TestSimDiskCrashSemantics(t *testing.T) {
	d := NewSimDisk()
	f, err := Create(d, "a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" volatile"))
	f.Close()

	// The name "a" itself is still volatile: no SyncDir yet.
	fork := d.Fork(d.Ops())
	fork.Crash()
	if _, err := fork.ReadFile("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("un-SyncDir'd name survived the crash: %v", err)
	}

	if err := d.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	fork = d.Fork(d.Ops())
	fork.Crash()
	b, err := fork.ReadFile("a")
	if err != nil || string(b) != "durable" {
		t.Fatalf("after crash ReadFile = %q, %v; want only the fsynced prefix", b, err)
	}
}

// TestSimDiskRenameDurability: a rename is visible immediately but durable
// only after SyncDir — a crash in between resurrects the old name.
func TestSimDiskRenameDurability(t *testing.T) {
	d := NewSimDisk()
	f, _ := Create(d, "a.tmp")
	f.Write([]byte("v1"))
	f.Sync()
	f.Close()
	d.SyncDir(".")

	if err := d.Rename("a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadFile("a"); err != nil {
		t.Fatalf("rename not visible: %v", err)
	}

	fork := d.Fork(d.Ops())
	fork.Crash()
	if _, err := fork.ReadFile("a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename durable without SyncDir")
	}
	if b, err := fork.ReadFile("a.tmp"); err != nil || string(b) != "v1" {
		t.Fatalf("old name gone after crash: %q, %v", b, err)
	}

	d.SyncDir(".")
	fork = d.Fork(d.Ops())
	fork.Crash()
	if b, err := fork.ReadFile("a"); err != nil || string(b) != "v1" {
		t.Fatalf("rename lost after SyncDir: %q, %v", b, err)
	}
}

// TestSimDiskForkDeterminism: a fork of the full trace reproduces the live
// state byte for byte.
func TestSimDiskForkDeterminism(t *testing.T) {
	d := NewSimDisk()
	d.MkdirAll("x/y", 0o755)
	f, _ := d.OpenFile("x/y/log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	for i := 0; i < 5; i++ {
		f.Write([]byte{byte(i), byte(i + 1)})
	}
	f.Sync()
	f.Truncate(4)
	f.Close()
	d.SyncDir("x/y")
	d.Link("x/y/log", "x/y/log2")
	d.Truncate("x/y/log2", 2)

	fork := d.Fork(d.Ops())
	for _, name := range []string{"x/y/log", "x/y/log2"} {
		want, err1 := d.ReadFile(name)
		got, err2 := fork.ReadFile(name)
		if err1 != nil || err2 != nil || !bytes.Equal(want, got) {
			t.Fatalf("%s: fork %q (%v) != live %q (%v)", name, got, err2, want, err1)
		}
	}
	// Hard link: both names share the inode, so the FS.Truncate through
	// log2 must show through log as well.
	if b, _ := d.ReadFile("x/y/log"); len(b) != 2 {
		t.Fatalf("hard link not shared: %q", b)
	}
}

// TestSimDiskCrashTorn: a torn crash keeps a prefix of the un-fsynced
// suffix, never invents bytes, never loses fsynced ones.
func TestSimDiskCrashTorn(t *testing.T) {
	d := NewSimDisk()
	f, _ := Create(d, "wal")
	f.Write([]byte("AAAA"))
	f.Sync()
	f.Write([]byte("BBBBBBBB"))
	f.Close()
	d.SyncDir(".")

	seen := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		fork := d.Fork(d.Ops())
		fork.CrashTorn(seed)
		b, err := fork.ReadFile("wal")
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < 4 || len(b) > 12 || string(b[:4]) != "AAAA" {
			t.Fatalf("torn crash produced %q", b)
		}
		for _, c := range b[4:] {
			if c != 'B' {
				t.Fatalf("torn crash invented bytes: %q", b)
			}
		}
		seen[len(b)] = true
	}
	if len(seen) < 2 {
		t.Fatal("torn crash never varied the kept prefix across seeds")
	}
}

// TestInjectorFsyncgate: the scheduled Sync fails once, and from then on
// the file is poisoned — no retry may report clean, no write may land.
func TestInjectorFsyncgate(t *testing.T) {
	in := NewInjector(NewSimDisk(), Plan{Seed: 1, FailSyncAt: 2})
	f, err := Create(in, "wal")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("one"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	f.Write([]byte("two"))
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("second sync = %v, want ErrSyncFailed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("retry after failed sync = %v, want ErrPoisoned (fsyncgate)", err)
	}
	if _, err := f.Write([]byte("three")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("write after failed sync = %v, want ErrPoisoned", err)
	}
	// A fresh handle on the same name is poisoned too: the page cache,
	// not the descriptor, lost the data.
	g, err := Create(in, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("new handle sync = %v, want ErrPoisoned", err)
	}
	st := in.Stats()
	if st.FailedSyncs != 1 || st.PoisonedOps == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInjectorTornWrite: the scheduled write lands only a prefix.
func TestInjectorTornWrite(t *testing.T) {
	d := NewSimDisk()
	in := NewInjector(d, Plan{Seed: 7, TornWriteAt: 2})
	f, _ := Create(in, "log")
	if _, err := f.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("BBBB"))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("torn write err = %v", err)
	}
	if n < 0 || n >= 4 {
		t.Fatalf("torn write landed %d of 4 bytes", n)
	}
	b, _ := d.ReadFile("log")
	if len(b) != 4+n {
		t.Fatalf("file holds %d bytes, want %d", len(b), 4+n)
	}
}

// TestInjectorNoSpace: the byte budget turns into ENOSPC, with the
// crossing write landing partially like a real full disk.
func TestInjectorNoSpace(t *testing.T) {
	d := NewSimDisk()
	in := NewInjector(d, Plan{Seed: 3, WriteBudget: 6})
	f, _ := Create(in, "log")
	if _, err := f.Write([]byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("BBBB"))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if n != 2 {
		t.Fatalf("crossing write landed %d bytes, want 2", n)
	}
	if _, err := f.Write([]byte("C")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-budget write = %v, want ErrNoSpace", err)
	}
}

// TestInjectorCorruptReads: every non-empty read has exactly one bit
// flipped, deterministically per seed.
func TestInjectorCorruptReads(t *testing.T) {
	d := NewSimDisk()
	f, _ := Create(d, "data")
	payload := bytes.Repeat([]byte{0x55}, 64)
	f.Write(payload)
	f.Close()

	in := NewInjector(d, Plan{Seed: 11, CorruptReads: true})
	got1, err := in.ReadFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got1, payload) {
		t.Fatal("corrupting read returned clean data")
	}
	diff := 0
	for i := range payload {
		if got1[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	in2 := NewInjector(d, Plan{Seed: 11, CorruptReads: true})
	got2, _ := in2.ReadFile("data")
	if !bytes.Equal(got1, got2) {
		t.Fatal("same seed produced different corruption")
	}
}

// TestAtomicReplaceDiscipline proves the write→fsync→rename→dirsync recipe
// is exactly what survives a crash at every one of its IO prefixes: the
// reader sees the old content or the new content, never a torn mix.
func TestAtomicReplaceDiscipline(t *testing.T) {
	d := NewSimDisk()
	write := func(name, content string, syncdir bool) {
		f, err := Create(d, name+".tmp")
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte(content))
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := d.Rename(name+".tmp", name); err != nil {
			t.Fatal(err)
		}
		if syncdir {
			if err := d.SyncDir("."); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("state", "old-old-old", true)
	mark := d.Ops()
	write("state", "new-new-new", true)

	for k := mark; k <= d.Ops(); k++ {
		fork := d.Fork(k)
		fork.Crash()
		b, err := fork.ReadFile("state")
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if s := string(b); s != "old-old-old" && s != "new-new-new" {
			t.Fatalf("prefix %d: torn state %q", k, s)
		}
	}
}

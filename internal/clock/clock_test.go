package clock

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", c.Now())
	}
	c.Advance(-time.Hour) // ignored
	if c.Now() != 5*time.Second {
		t.Fatal("negative Advance moved the clock")
	}
}

func TestSetMonotonic(t *testing.T) {
	var c Clock
	c.Set(10 * time.Second)
	if c.Now() != 10*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Set(4 * time.Second) // earlier: ignored
	if c.Now() != 10*time.Second {
		t.Fatal("Set moved the clock backwards")
	}
	c.Set(11 * time.Second)
	if c.Now() != 11*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestConcurrentSetKeepsMax(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Set(time.Duration(g*1000+i) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if c.Now() != 7999*time.Millisecond {
		t.Fatalf("Now = %v, want 7.999s", c.Now())
	}
}

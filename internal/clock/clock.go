// Package clock provides the logical clock that drives every time-dependent
// mechanism in the reproduction: relation-table expiry (1–3 s in the paper),
// the Sync Queue upload delay (~3 s), and trace replay pacing (the paper's
// traces space writes 10–15 s apart). Using a logical clock instead of wall
// time makes a multi-minute trace replay instantaneous and — more
// importantly — makes every experiment deterministic.
package clock

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonic logical clock. The zero value starts at 0. It is safe
// for concurrent use.
type Clock struct {
	now atomic.Int64 // nanoseconds
}

// Now returns the current logical time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// Set jumps the clock to t if t is later than the current time, keeping the
// clock monotonic.
func (c *Clock) Set(t time.Duration) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/block"
	"repro/internal/faultinject"
	"repro/internal/integrity"
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/storagefault"
	"repro/internal/undolog"
	"repro/internal/version"
	"repro/internal/wire"
)

// One fully-loaded storm: every crash prefix, torn variants, every fsync
// failure point, and ENOSPC — zero violations.
func TestCrashStormSingleSeed(t *testing.T) {
	res, err := CrashStorm(StormConfig{Seed: 1, Torn: true, FsyncFailures: true, NoSpace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.CrashPoints < 10 {
		t.Fatalf("suspiciously few crash points explored: %+v", res)
	}
	if res.FsyncPoints == 0 || res.TornPoints == 0 || res.NoSpaceRuns == 0 {
		t.Fatalf("failure modes not exercised: %+v", res)
	}
	t.Logf("storm: %+v", res)
}

// The acceptance matrix: >= 20 seeds, every prefix crash point of the mixed
// push/save/compact workload, with torn-write variants, zero violations.
func TestCrashStormMatrix(t *testing.T) {
	const seeds = 20
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := CrashStorm(StormConfig{Seed: seed, Torn: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
		})
	}
}

// Fsync-failure and ENOSPC sweeps across a smaller seed band (they re-run
// the workload live once per fsync point, so the matrix is pricier).
func TestCrashStormFaultMatrix(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := CrashStorm(StormConfig{Seed: seed, FsyncFailures: true, NoSpace: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
		})
	}
}

// Composed network + storage faults: the engine-level chaos run (TCP + TLS
// through a seeded NetPlan) against a server whose journal lives on a
// SimDisk; midway the server's storage crashes, a recovered server is
// swapped in behind the same listener, and after healing every network
// fault the client must still converge with zero duplicate applies.
func TestComposedNetworkStorageFaults(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunComposed(ComposedConfig{
				Seed: seed,
				Faults: faultinject.NetFaultConfig{
					DropProb:    0.05,
					PartialProb: 0.03,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("seed %d diverged: %s", seed, res.Mismatch)
			}
			if res.DuplicateApplies != 0 {
				t.Fatalf("seed %d: %d duplicate applies", seed, res.DuplicateApplies)
			}
			if res.StorageCrashes == 0 {
				t.Fatalf("seed %d: storage crash never exercised", seed)
			}
		})
	}
}

// The chunk store crash-replay satellite: a chunk-carrying push lands, the
// server snapshots, and at every prefix of the IO trace a crashed fork must
// recover to a server whose chunk store is EITHER pre-push, post-push, or
// post-snapshot — proven behaviorally: a push that references the chunk by
// hash (no data) either resolves it cleanly or is cleanly refused as
// unknown, and when it resolves, the assembled content is byte-identical.
func TestChunkStoreCrashReplay(t *testing.T) {
	disk := storagefault.NewSimDisk()
	s := server.NewWithOptions(nil, server.Options{FS: disk})
	j, err := server.OpenJournalFS(disk, "journal", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j)

	content := bytes.Repeat([]byte("deltacfs-chunk!"), 20)
	h := block.StrongSum(content)
	carry := &wire.Node{
		Kind:   wire.NCDC,
		Path:   "a/f",
		Size:   int64(len(content)),
		Chunks: []wire.ChunkRef{{Hash: h, Len: int64(len(content)), Data: content}},
		Ver:    version.ID{Client: 1, Count: 1},
	}
	if r := s.Push(1, &wire.Batch{Seq: 1, Nodes: []*wire.Node{carry}}); r.Err != "" {
		t.Fatalf("carry push: %v", r.Err)
	}
	if err := s.SaveFile(stormSnap); err != nil {
		t.Fatal(err)
	}
	j.Close()

	refNode := func() *wire.Node {
		return &wire.Node{
			Kind:   wire.NCDC,
			Path:   "b/copy",
			Size:   int64(len(content)),
			Chunks: []wire.ChunkRef{{Hash: h, Len: int64(len(content))}},
			Ver:    version.ID{Client: 2, Count: 1},
		}
	}
	resolved, refused := 0, 0
	for k := 0; k <= disk.Ops(); k++ {
		fork := disk.Fork(k)
		fork.Crash()
		s2, err := recoverServer(fork)
		if err != nil {
			t.Fatalf("prefix %d: recovery: %v", k, err)
		}
		r := s2.Push(2, &wire.Batch{Seq: 1, Nodes: []*wire.Node{refNode()}})
		switch {
		case r.Err == "":
			got, ok := s2.FileContent("b/copy")
			if !ok || !bytes.Equal(got, content) {
				t.Fatalf("prefix %d: chunk resolved to wrong content", k)
			}
			resolved++
		case strings.Contains(r.Err, "unknown chunk"):
			refused++ // pre-durable state: the client would re-send with data
		default:
			t.Fatalf("prefix %d: unexpected refusal: %s", k, r.Err)
		}
	}
	if resolved == 0 || refused == 0 {
		t.Fatalf("sweep did not cross the durability boundary: resolved=%d refused=%d", resolved, refused)
	}
}

// The undolog snapshot crash-replay satellite: SaveTo's atomic-replace
// discipline means a crash at any prefix of a second save recovers EITHER
// the first snapshot or the second — LoadFrom never reports ErrCorrupt and
// never reconstructs a blended old version.
func TestUndologSnapshotCrashReplay(t *testing.T) {
	disk := storagefault.NewSimDisk()

	mem := []byte("0123456789abcdef")
	read := func(off, n int64) ([]byte, error) { return mem[off : off+n], nil }

	l1 := undolog.New(nil)
	l1.Track("f", int64(len(mem)))
	if err := l1.BeforeWrite("f", 0, 4, read); err != nil {
		t.Fatal(err)
	}
	if err := l1.SaveTo(disk, "undo.snap"); err != nil {
		t.Fatal(err)
	}
	l2 := undolog.New(nil)
	l2.Track("f", int64(len(mem)))
	if err := l2.BeforeWrite("f", 4, 8, read); err != nil {
		t.Fatal(err)
	}
	if err := l2.SaveTo(disk, "undo.snap"); err != nil {
		t.Fatal(err)
	}

	sawOld, sawNew := 0, 0
	for k := 0; k <= disk.Ops(); k++ {
		for _, torn := range []bool{false, true} {
			fork := disk.Fork(k)
			if torn {
				fork.CrashTorn(int64(k))
			} else {
				fork.Crash()
			}
			rl := undolog.New(nil)
			loaded, err := rl.LoadFrom(fork, "undo.snap")
			if err != nil {
				t.Fatalf("prefix %d torn=%v: %v", k, torn, err)
			}
			if !loaded {
				continue // pre-first-save prefixes: missing file is fine
			}
			switch got := rl.PreservedBytes("f"); got {
			case l1.PreservedBytes("f"):
				sawOld++
			case l2.PreservedBytes("f"):
				sawNew++
			default:
				t.Fatalf("prefix %d torn=%v: blended snapshot: %d preserved bytes", k, torn, got)
			}
		}
	}
	if sawOld == 0 || sawNew == 0 {
		t.Fatalf("sweep did not cross the replace boundary: old=%d new=%d", sawOld, sawNew)
	}
}

// Read-side bit corruption must not pass silently: the integrity scanner
// over a corrupting disk reports mismatched blocks.
func TestIntegrityScannerCatchesReadCorruption(t *testing.T) {
	disk := storagefault.NewSimDisk()
	kv, err := kvstore.OpenWith("kv", kvstore.Options{FS: disk})
	if err != nil {
		t.Fatal(err)
	}
	st := integrity.New(kv, nil)
	content := bytes.Repeat([]byte("block-content"), 512)
	if err := st.SetFile("f", content); err != nil {
		t.Fatal(err)
	}
	if bad, err := st.Verify("f", content); err != nil || len(bad) != 0 {
		t.Fatalf("clean verify: bad=%v err=%v", bad, err)
	}
	if err := kv.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the checksum store through a bit-flipping reader: the stored
	// sums are corrupted on the way in, so verification of pristine content
	// must flag blocks.
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 7, CorruptReads: true})
	kv2, err := kvstore.OpenWith("kv", kvstore.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	st2 := integrity.New(kv2, nil)
	bad, err := st2.Verify("f", content)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Fatal("integrity scanner missed read-side corruption")
	}
}

package chaos

// Crash-point exploration for the persistence stack, in the style of ALICE
// (OSDI'14 "All File Systems Are Not Created Equal"): run a workload against
// a simulated disk that records its ordered IO trace, then for EVERY prefix
// of that trace fork the disk, crash it (discard everything not yet durable
// under POSIX fsync/dirsync rules), run the full recovery path — snapshot
// load, kvstore WAL reopen (each record CRC-checked: the integrity scan),
// journal replay through Push — and assert the recovered server is a
// consistent, acknowledged-prefix state of the original run. On top of the
// every-prefix sweep, the storm re-runs the workload live under injected
// fsync failure at each fsync point (fsyncgate semantics: the WAL poisons,
// the server degrades to read-only) and under an ENOSPC write budget,
// asserting the acked-⇒-durable contract holds at every failure point too.
//
// The invariants, per crash point:
//
//  1. No acknowledged batch is lost: the recovered state includes every
//     batch acked before the crash point.
//  2. No torn state is visible: the recovered state equals EXACTLY one of
//     the oracle states the original run passed through — never a blend.
//  3. The restored dedup cache still absorbs covered batches: re-pushing
//     the full workload converges to the final oracle state with zero
//     duplicate applies.
//  4. Per-path version order is intact: each path's recovered head version
//     matches the oracle state it recovered to.

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/server"
	"repro/internal/storagefault"
	"repro/internal/version"
	"repro/internal/wire"
)

// StormConfig parameterizes one crash-point storm.
type StormConfig struct {
	// Seed drives the workload (paths, contents, clients) and torn-write
	// choices.
	Seed int64
	// Batches is the number of pushes in the workload (default 6). The
	// workload also snapshots + truncates the journal midway and at the
	// end, so the trace covers the push, save, and compact paths.
	Batches int
	// Torn additionally explores a torn-append crash (seeded partial
	// suffix) at every prefix.
	Torn bool
	// FsyncFailures re-runs the workload live once per fsync point with
	// that fsync failing (and the file poisoned after it).
	FsyncFailures bool
	// NoSpace re-runs the workload under a byte write budget chosen to
	// exhaust mid-run.
	NoSpace bool
}

// StormResult reports one storm, JSON-able for the experiment artifact.
type StormResult struct {
	Seed        int64 `json:"seed"`
	Ops         int   `json:"ops"`          // IO trace length of the clean run
	Syncs       int   `json:"syncs"`        // fsync points in the clean run
	Acked       int   `json:"acked"`        // batches acknowledged in the clean run
	CrashPoints int   `json:"crash_points"` // clean-crash prefixes explored
	TornPoints  int   `json:"torn_points"`  // torn-crash prefixes explored
	FsyncPoints int   `json:"fsync_points"` // live fsync-failure runs
	NoSpaceRuns int   `json:"nospace_runs"` // live ENOSPC runs
	Recoveries  int   `json:"recoveries"`   // total successful recoveries
	// Violations lists every invariant breach; empty means the storm passed.
	Violations []string `json:"violations,omitempty"`
}

// pathState is one file's oracle entry.
type pathState struct {
	content []byte
	ver     version.ID
}

// oracleState is the full visible server state at one ack point.
type oracleState map[string]pathState

// ackPoint marks one acknowledged batch: the IO-trace length at ack time
// and the oracle state the server held.
type ackPoint struct {
	ops   int
	state oracleState
}

// stormBatch is one scripted push, replayable against a recovered server.
type stormBatch struct {
	from  uint32
	batch *wire.Batch
}

const stormSnap = "state.snap"

// buildWorkload generates the deterministic batch script for a seed.
func buildWorkload(seed int64, n int) []stormBatch {
	rng := rand.New(rand.NewSource(seed))
	paths := []string{"a/f", "a/g", "b/h", "doc"}
	lastVer := map[string]version.ID{}
	perClientCount := map[uint32]uint64{}
	var out []stormBatch
	for i := 0; i < n; i++ {
		cli := uint32(1 + rng.Intn(2))
		p := paths[rng.Intn(len(paths))]
		content := make([]byte, 64+rng.Intn(448))
		rng.Read(content)
		perClientCount[cli]++
		node := &wire.Node{
			Kind: wire.NFull,
			Path: p,
			Full: content,
			Ver:  version.ID{Client: cli, Count: perClientCount[cli]},
			Base: lastVer[p],
		}
		lastVer[p] = node.Ver
		out = append(out, stormBatch{
			from:  cli,
			batch: &wire.Batch{Seq: perClientCount[cli], Nodes: []*wire.Node{node}},
		})
	}
	return out
}

// captureState snapshots the server's visible files (content + head
// version) as an oracle entry.
func captureState(s *server.Server) oracleState {
	st := make(oracleState)
	for _, p := range visible(s.Files()) {
		c, ok := s.FileContent(p)
		if !ok {
			continue
		}
		var ps pathState
		ps.content = append([]byte(nil), c...)
		if v, ok := s.Head(p); ok {
			ps.ver = v
		}
		st[p] = ps
	}
	return st
}

func statesEqual(a, b oracleState) bool {
	if len(a) != len(b) {
		return false
	}
	for p, pa := range a {
		pb, ok := b[p]
		if !ok || !bytes.Equal(pa.content, pb.content) || pa.ver != pb.ver {
			return false
		}
	}
	return true
}

// runWorkload drives the batch script against a server whose journal and
// snapshots live on fsys, returning the ack points in order. Refused pushes
// (degraded mode, poisoned WAL, ENOSPC) are tolerated: the contract under
// test is acked ⇒ durable, and a refusal simply isn't an ack. Save/truncate
// errors are tolerated for the same reason.
func runWorkload(fsys storagefault.FS, script []stormBatch) (acks []ackPoint, traceOps func() int, err error) {
	var disk *storagefault.SimDisk
	switch d := fsys.(type) {
	case *storagefault.SimDisk:
		disk = d
	case *storagefault.Injector:
		disk = d.Inner().(*storagefault.SimDisk)
	default:
		return nil, nil, fmt.Errorf("chaos: storm workload needs a SimDisk-backed FS")
	}
	s := server.NewWithOptions(nil, server.Options{FS: fsys})
	j, err := server.OpenJournalFS(fsys, "journal", 0)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: storm journal: %w", err)
	}
	s.SetJournal(j)
	for i, sb := range script {
		r := s.Push(sb.from, sb.batch)
		if r.Err == "" {
			acks = append(acks, ackPoint{ops: disk.Ops(), state: captureState(s)})
		}
		if i == len(script)/2 {
			// Midway: snapshot + journal truncation (the compact path).
			if err := s.SaveFile(stormSnap); err == nil {
				j.TruncateSnapshotted()
			}
		}
	}
	// Final snapshot, so crash points also fall inside a save whose journal
	// suffix is empty.
	//deltavet:allow errsync harness workload tolerates snapshot failure under injection; acked ⇒ durable is what the sweep checks
	s.SaveFile(stormSnap)
	j.Close()
	return acks, disk.Ops, nil
}

// recoverServer runs the full recovery path against fsys: snapshot load,
// journal reopen (kvstore WAL replay CRC-checks every surviving record —
// the integrity scan), replay through Push. The journal is left attached so
// convergence re-pushes are journaled like live traffic.
func recoverServer(fsys storagefault.FS) (*server.Server, error) {
	s := server.NewWithOptions(nil, server.Options{FS: fsys})
	if _, err := s.LoadFile(stormSnap); err != nil {
		return nil, fmt.Errorf("snapshot load: %w", err)
	}
	j, err := server.OpenJournalFS(fsys, "journal", 0)
	if err != nil {
		return nil, fmt.Errorf("journal reopen: %w", err)
	}
	if _, err := j.Replay(s); err != nil {
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	s.SetJournal(j)
	return s, nil
}

// checkRecovery asserts the four storm invariants for a recovered server.
// ackedBefore is the number of batches acked at or before the crash point;
// finalState is the oracle state after the FULL script (the convergence
// target for the re-push, which may extend past this run's own acks).
func checkRecovery(s *server.Server, acks []ackPoint, ackedBefore int, script []stormBatch, finalState oracleState, label string) []string {
	var violations []string
	got := captureState(s)
	// Invariants 1, 2, 4: the recovered state must be exactly one oracle
	// state (torn blends match none), at or after the last acked one
	// (earlier states would have lost an acked batch). States compare
	// content AND head version, so per-path version order is checked too.
	// oracle index -1 is the empty initial state, legal only if nothing
	// was acked yet.
	matched := len(got) == 0 && ackedBefore == 0
	for i := ackedBefore - 1; !matched && i < len(acks); i++ {
		if i >= 0 && statesEqual(got, acks[i].state) {
			matched = true
		}
	}
	if !matched {
		violations = append(violations,
			fmt.Sprintf("%s: recovered state matches no oracle state at or after ack %d (torn or lost)", label, ackedBefore))
	}
	// Invariant 3: re-push the whole workload. Covered batches must be
	// absorbed (dedup), the rest applied, converging on the final oracle
	// state with zero duplicate applies.
	for _, sb := range script {
		if r := s.Push(sb.from, sb.batch); r.Err != "" {
			violations = append(violations,
				fmt.Sprintf("%s: re-push of batch (client %d seq %d) refused after recovery: %s", label, sb.from, sb.batch.Seq, r.Err))
			return violations
		}
	}
	if got := captureState(s); !statesEqual(got, finalState) {
		violations = append(violations,
			fmt.Sprintf("%s: after re-push, state does not converge to final oracle", label))
	}
	if d := s.DuplicateApplies(); d != 0 {
		violations = append(violations,
			fmt.Sprintf("%s: %d duplicate applies after recovery re-push (dedup cache not restored)", label, d))
	}
	return violations
}

// ackedAt returns how many batches were acked within the first ops trace
// operations.
func ackedAt(acks []ackPoint, ops int) int {
	n := 0
	for _, a := range acks {
		if a.ops <= ops {
			n++
		}
	}
	return n
}

// CrashStorm explores every crash point of the seeded workload. The
// returned error reports harness failures; invariant breaches land in
// Result.Violations so a matrix caller can echo the seed.
func CrashStorm(cfg StormConfig) (*StormResult, error) {
	if cfg.Batches <= 0 {
		cfg.Batches = 6
	}
	script := buildWorkload(cfg.Seed, cfg.Batches)
	res := &StormResult{Seed: cfg.Seed}

	// Clean run: record the trace and the oracle.
	disk := storagefault.NewSimDisk()
	acks, ops, err := runWorkload(disk, script)
	if err != nil {
		return nil, err
	}
	res.Ops = ops()
	res.Syncs = disk.SyncOps()
	res.Acked = len(acks)
	if len(acks) != len(script) {
		return nil, fmt.Errorf("chaos: clean run acked %d of %d batches", len(acks), len(script))
	}
	finalState := acks[len(acks)-1].state

	// Every-prefix crash sweep (plus torn variant).
	for k := 0; k <= res.Ops; k++ {
		fork := disk.Fork(k)
		fork.Crash()
		res.CrashPoints++
		label := fmt.Sprintf("seed %d prefix %d/%d", cfg.Seed, k, res.Ops)
		s, err := recoverServer(fork)
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: recovery failed: %v", label, err))
			continue
		}
		res.Recoveries++
		res.Violations = append(res.Violations, checkRecovery(s, acks, ackedAt(acks, k), script, finalState, label)...)

		if cfg.Torn {
			tf := disk.Fork(k)
			tf.CrashTorn(cfg.Seed + int64(k))
			res.TornPoints++
			tl := label + " torn"
			ts, err := recoverServer(tf)
			if err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("%s: recovery failed: %v", tl, err))
				continue
			}
			res.Recoveries++
			res.Violations = append(res.Violations, checkRecovery(ts, acks, ackedAt(acks, k), script, finalState, tl)...)
		}
	}

	// Live fsync-failure sweep: one full run per fsync point, with that
	// fsync failing and the file poisoned after it (fsyncgate). Whatever
	// the run managed to ack must survive a crash.
	if cfg.FsyncFailures {
		for fail := 1; fail <= res.Syncs; fail++ {
			fdisk := storagefault.NewSimDisk()
			inj := storagefault.NewInjector(fdisk, storagefault.Plan{Seed: cfg.Seed, FailSyncAt: fail})
			facks, _, err := runWorkload(inj, script)
			if err != nil {
				return nil, err
			}
			res.FsyncPoints++
			fdisk.Crash()
			label := fmt.Sprintf("seed %d fsync-fail %d", cfg.Seed, fail)
			s, err := recoverServer(fdisk)
			if err != nil {
				res.Violations = append(res.Violations, fmt.Sprintf("%s: recovery failed: %v", label, err))
				continue
			}
			res.Recoveries++
			res.Violations = append(res.Violations, checkRecovery(s, facks, len(facks), script, finalState, label)...)
		}
	}

	// Live ENOSPC run: the write budget exhausts mid-run; acks must stop at
	// (or before) exhaustion and everything acked must survive a crash.
	if cfg.NoSpace {
		ndisk := storagefault.NewSimDisk()
		inj := storagefault.NewInjector(ndisk, storagefault.Plan{Seed: cfg.Seed, WriteBudget: 1024})
		nacks, _, err := runWorkload(inj, script)
		if err != nil {
			return nil, err
		}
		res.NoSpaceRuns++
		ndisk.Crash()
		label := fmt.Sprintf("seed %d enospc", cfg.Seed)
		s, err := recoverServer(ndisk)
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("%s: recovery failed: %v", label, err))
		} else {
			res.Recoveries++
			res.Violations = append(res.Violations, checkRecovery(s, nacks, len(nacks), script, finalState, label)...)
		}
	}

	return res, nil
}

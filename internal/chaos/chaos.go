// Package chaos is the randomized fault-schedule harness for the
// fault-tolerant sync path. One chaos run replays an identical rng-generated
// operation script through two complete client↔cloud stacks:
//
//   - a reference stack (loopback endpoint, no faults), and
//   - a faulty stack (real TCP+TLS transport through a seeded
//     faultinject.NetPlan, a retrying wire.ResilientClient, and the engine's
//     degradation buffer),
//
// then heals all faults, drains, and compares the two servers' final file
// sets byte for byte. Content convergence is the oracle — version IDs are
// deliberately excluded, because metadata round-trips that fail during a
// partition legitimately steer the engine down different (equally correct)
// version-consuming paths. A duplicate-apply tripwire on the faulty server
// additionally proves that replayed ambiguous pushes were absorbed by the
// idempotency layer rather than re-applied.
package chaos

import (
	"bytes"
	"crypto/tls"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives both the operation script and the fault schedule.
	Seed int64
	// Ops is the script length (default 60).
	Ops int
	// Faults is the network fault profile; its Seed field is overridden
	// with Config.Seed.
	Faults faultinject.NetFaultConfig
	// Checksums enables the engine integrity layer in both stacks.
	Checksums bool
	// DrainAttempts bounds post-heal drain retries (default 8).
	DrainAttempts int
	// ForceGob serves the faulty stack gob-only (the pre-binary-codec
	// server): the auto-negotiating client must fall back and the whole
	// fault matrix must converge identically on the legacy codec.
	ForceGob bool
}

// Result reports one chaos run.
type Result struct {
	Seed      int64 `json:"seed"`
	Converged bool  `json:"converged"`
	// Mismatch describes the first divergence when Converged is false.
	Mismatch string            `json:"mismatch,omitempty"`
	Files    int               `json:"files"`
	Sync     metrics.SyncStats `json:"sync"`
	// DuplicateApplies must be zero: replayed ambiguous pushes absorbed by
	// the idempotency layer, never re-applied.
	DuplicateApplies int                       `json:"duplicate_applies"`
	Faults           faultinject.NetFaultStats `json:"faults"`
}

// op is one scripted file operation. Kind reuses the generator's case index.
type op struct {
	kind      int
	p, dst    string
	off, size int64
	data      []byte
	tick      time.Duration // advance-and-tick when > 0
}

// script generates the operation sequence for a seed. It consults only the
// rng — never an outcome — so the same seed replays identically on both
// stacks regardless of what faults do to the faulty one.
func script(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d", "tmp", "f~", "doc"}
	pick := func() string { return names[rng.Intn(len(names))] }
	var ops []op
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); k {
		case 0, 1:
			ops = append(ops, op{kind: 0, p: pick()})
		case 2, 3, 4, 5:
			data := make([]byte, 1+rng.Intn(8<<10))
			rng.Read(data)
			ops = append(ops, op{kind: 2, p: pick(), off: int64(rng.Intn(32 << 10)), data: data})
		case 6:
			ops = append(ops, op{kind: 6, p: pick(), size: int64(rng.Intn(16 << 10))})
		case 7:
			src, dst := pick(), pick()
			if src != dst {
				ops = append(ops, op{kind: 7, p: src, dst: dst})
			}
		case 8:
			ops = append(ops, op{kind: 8, p: pick()})
		case 9:
			ops = append(ops, op{kind: 9, p: pick()})
		}
		if rng.Intn(4) == 0 {
			now += time.Duration(rng.Intn(5000)) * time.Millisecond
			ops = append(ops, op{kind: -1, tick: now})
		}
	}
	return ops
}

// replay drives one engine through the script. Operation errors are
// ignored: both stacks share vfs semantics, so outcomes match by
// construction, and scripts intentionally include invalid operations
// (writes to unlinked files, and so on).
func replay(eng *core.Engine, clk *clock.Clock, ops []op) {
	fs := eng.FS()
	for _, o := range ops {
		switch o.kind {
		case -1:
			clk.Set(o.tick)
			eng.Tick(clk.Now())
		case 0:
			_ = fs.Create(o.p)
		case 2:
			_ = fs.WriteAt(o.p, o.off, o.data)
		case 6:
			_ = fs.Truncate(o.p, o.size)
		case 7:
			_ = fs.Rename(o.p, o.dst)
		case 8:
			_ = fs.Unlink(o.p)
		case 9:
			_ = fs.Close(o.p)
		}
	}
}

// tlsOnce caches the self-signed certificate across runs; generating one
// per seed would dominate the matrix's runtime.
var (
	tlsOnce   sync.Once
	tlsServer *tls.Config
	tlsClient *tls.Config
	tlsGenErr error
)

func tlsConfigs() (*tls.Config, *tls.Config, error) {
	tlsOnce.Do(func() { tlsServer, tlsClient, tlsGenErr = wire.SelfSignedTLS() })
	return tlsServer, tlsClient, tlsGenErr
}

// Run executes one chaos run. The returned error reports harness failures
// (listen, dial, drain never completing); divergence is reported in the
// Result so callers can echo the seed.
func Run(cfg Config) (*Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.DrainAttempts <= 0 {
		cfg.DrainAttempts = 8
	}
	ops := script(cfg.Seed, cfg.Ops)

	// Reference stack: loopback, fault-free.
	refSrv := server.New(nil)
	refClk := &clock.Clock{}
	refEng, err := core.New(core.Config{
		Backing:   vfs.NewMemFS(),
		Endpoint:  server.NewLoopback(refSrv, nil, nil),
		Clock:     refClk,
		Checksums: cfg.Checksums,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: reference engine: %w", err)
	}
	replay(refEng, refClk, ops)
	refClk.Advance(time.Minute)
	refEng.Tick(refClk.Now())
	if err := refEng.Drain(); err != nil {
		return nil, fmt.Errorf("chaos: reference drain: %w", err)
	}

	// Faulty stack: TCP + TLS over the fault plan. TLS sits above the
	// injection point so corruption surfaces as broken connections, not
	// silently poisoned payloads.
	serverConf, clientConf, err := tlsConfigs()
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	defer lis.Close()
	faults := cfg.Faults
	faults.Seed = cfg.Seed
	plan := faultinject.NewNetPlan(faults)
	srv := server.New(nil)
	sm := &metrics.SyncMeter{}
	srv.SetSyncMeter(sm)
	go wire.ServeWith(tls.NewListener(plan.Listener(lis), serverConf), srv,
		wire.ServeConfig{ForceGob: cfg.ForceGob})

	// Per-RPC attempts must outlast a partition hitting mid-exchange: every
	// failed attempt consumes one partitioned op, plus headroom for the
	// probabilistic faults around it.
	partOps := cfg.Faults.PartitionOps
	if partOps <= 0 {
		partOps = 20 // NewNetPlan's default
	}
	policy := wire.RetryPolicy{
		MaxAttempts: partOps + 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    8 * time.Millisecond,
		Seed:        cfg.Seed,
		OpTimeout:   2 * time.Second,
	}
	// The initial connect is retried in an outer loop on top of the policy's
	// own budget: a real client re-dials indefinitely, and back-to-back
	// partitions can outlast any single per-RPC attempt budget.
	var ep *wire.ResilientClient
	for attempt := 0; ; attempt++ {
		ep, err = wire.DialResilient(nil, lis.Addr().String(),
			wire.DialOpts{TLS: clientConf}, policy, sm)
		if err == nil {
			break
		}
		if attempt == 5 {
			return nil, fmt.Errorf("chaos: dial: %w", err)
		}
	}
	defer ep.Close()

	clk := &clock.Clock{}
	eng, err := core.New(core.Config{
		Backing:   vfs.NewMemFS(),
		Endpoint:  ep,
		Clock:     clk,
		Checksums: cfg.Checksums,
		SyncMeter: sm,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: faulty engine: %w", err)
	}
	replay(eng, clk, ops)

	// Heal every fault and drain until the unsent buffer empties: the
	// crash-consistent resume path, end to end.
	plan.Heal()
	var drainErr error
	for i := 0; i < cfg.DrainAttempts; i++ {
		clk.Advance(time.Minute)
		eng.Tick(clk.Now())
		if drainErr = eng.Drain(); drainErr == nil {
			break
		}
	}
	if drainErr != nil {
		return nil, fmt.Errorf("chaos: seed %d: drain after heal: %w", cfg.Seed, drainErr)
	}

	res := &Result{
		Seed:             cfg.Seed,
		Sync:             sm.Snapshot(),
		DuplicateApplies: srv.DuplicateApplies(),
		Faults:           plan.Stats(),
	}
	res.Converged, res.Mismatch = compare(refSrv, srv)
	res.Files = len(refSrv.Files())
	if res.DuplicateApplies != 0 {
		res.Converged = false
		if res.Mismatch == "" {
			res.Mismatch = fmt.Sprintf("%d duplicate applies", res.DuplicateApplies)
		}
	}
	return res, nil
}

// compare checks that both servers hold identical file sets with identical
// content (trash bookkeeping excluded; it never uploads).
func compare(ref, got *server.Server) (bool, string) {
	refFiles := visible(ref.Files())
	gotFiles := visible(got.Files())
	if !equalSets(refFiles, gotFiles) {
		return false, fmt.Sprintf("file sets differ: reference %v, faulty %v", refFiles, gotFiles)
	}
	for _, p := range refFiles {
		want, _ := ref.FileContent(p)
		have, _ := got.FileContent(p)
		if !bytes.Equal(want, have) {
			return false, fmt.Sprintf("%s: faulty %d bytes != reference %d bytes", p, len(have), len(want))
		}
	}
	return true, ""
}

func visible(paths []string) []string {
	out := paths[:0]
	for _, p := range paths {
		if !strings.HasPrefix(p, ".deltacfs/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package chaos

// Composed network + storage fault runs: the randomized network-fault chaos
// harness (TCP + TLS through a seeded NetPlan) pointed at a server whose
// push journal lives on a simulated disk. Midway through the script the
// server's machine "dies": the disk is forked and crashed (dropping
// everything not yet fsynced), every live connection is severed, and a
// recovered server — snapshot load, WAL replay, journal replay — is swapped
// in behind the same listener address. The client rides it out with its
// normal retry/degradation machinery. After the script, all network faults
// heal and the drained client must converge with the fault-free reference
// stack, with zero duplicate applies on the recovered server: the journal's
// idempotency state, rebuilt from disk, absorbs every ambiguous replay that
// straddled the crash.

import (
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/storagefault"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// ComposedConfig parameterizes one composed run.
type ComposedConfig struct {
	// Seed drives the script, the network fault schedule, and the storage
	// fork point.
	Seed int64
	// Ops is the script length (default 40).
	Ops int
	// Faults is the network fault profile (Seed overridden with Seed).
	Faults faultinject.NetFaultConfig
	// DrainAttempts bounds post-heal drain retries (default 10).
	DrainAttempts int
}

// ComposedResult reports one composed run.
type ComposedResult struct {
	Seed             int64                     `json:"seed"`
	Converged        bool                      `json:"converged"`
	Mismatch         string                    `json:"mismatch,omitempty"`
	Files            int                       `json:"files"`
	StorageCrashes   int                       `json:"storage_crashes"`
	JournalReplayed  int                       `json:"journal_replayed"`
	DuplicateApplies int                       `json:"duplicate_applies"`
	Sync             metrics.SyncStats         `json:"sync"`
	Faults           faultinject.NetFaultStats `json:"faults"`
}

// swapBackend is a wire.Backend whose target server can be replaced at
// runtime — the "same address, new process" shape of a server restart.
type swapBackend struct {
	mu  sync.RWMutex
	cur *server.Server
}

func (b *swapBackend) load() *server.Server {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.cur
}

func (b *swapBackend) swap(s *server.Server) {
	b.mu.Lock()
	b.cur = s
	b.mu.Unlock()
}

func (b *swapBackend) RegisterGroup(group uint32) uint32 { return b.load().RegisterGroup(group) }
func (b *swapBackend) Attach(client uint32)              { b.load().Attach(client) }
func (b *swapBackend) PushEncoded(from uint32, eb *wire.EncodedBatch) *wire.PushReply {
	return b.load().PushEncoded(from, eb)
}
func (b *swapBackend) Fetch(path string) *wire.FetchReply { return b.load().Fetch(path) }
func (b *swapBackend) Head(path string) (version.ID, bool) {
	return b.load().Head(path)
}
func (b *swapBackend) FetchRange(path string, off, n int64) ([]byte, error) {
	return b.load().FetchRange(path, off, n)
}
func (b *swapBackend) PollEncoded(client uint32) []*wire.EncodedBatch {
	return b.load().PollEncoded(client)
}

var _ wire.Backend = (*swapBackend)(nil)

// trackListener records accepted connections so a simulated machine crash
// can sever them all.
type trackListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *trackListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

// sever closes every connection accepted so far (closing an already-closed
// conn is harmless).
func (l *trackListener) sever() {
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// RunComposed executes one composed network+storage fault run.
func RunComposed(cfg ComposedConfig) (*ComposedResult, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 40
	}
	if cfg.DrainAttempts <= 0 {
		cfg.DrainAttempts = 10
	}
	ops := script(cfg.Seed, cfg.Ops)

	// Reference stack: loopback, fault-free.
	refSrv := server.New(nil)
	refClk := &clock.Clock{}
	refEng, err := core.New(core.Config{
		Backing:  vfs.NewMemFS(),
		Endpoint: server.NewLoopback(refSrv, nil, nil),
		Clock:    refClk,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: composed reference engine: %w", err)
	}
	replay(refEng, refClk, ops)
	refClk.Advance(time.Minute)
	refEng.Tick(refClk.Now())
	if err := refEng.Drain(); err != nil {
		return nil, fmt.Errorf("chaos: composed reference drain: %w", err)
	}

	// Faulty stack: server with a sync-mode journal on a SimDisk, behind a
	// swappable backend, behind TLS over the network fault plan.
	disk := storagefault.NewSimDisk()
	srv := server.NewWithOptions(nil, server.Options{FS: disk})
	j, err := server.OpenJournalFS(disk, "journal", 0)
	if err != nil {
		return nil, fmt.Errorf("chaos: composed journal: %w", err)
	}
	srv.SetJournal(j)
	backend := &swapBackend{}
	backend.swap(srv)

	serverConf, clientConf, err := tlsConfigs()
	if err != nil {
		return nil, err
	}
	rawLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: composed listen: %w", err)
	}
	defer rawLis.Close()
	tracked := &trackListener{Listener: rawLis}
	faults := cfg.Faults
	faults.Seed = cfg.Seed
	plan := faultinject.NewNetPlan(faults)
	go wire.Serve(tls.NewListener(plan.Listener(tracked), serverConf), backend)

	sm := &metrics.SyncMeter{}
	srv.SetSyncMeter(sm)
	partOps := cfg.Faults.PartitionOps
	if partOps <= 0 {
		partOps = 20
	}
	policy := wire.RetryPolicy{
		MaxAttempts: partOps + 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    8 * time.Millisecond,
		Seed:        cfg.Seed,
		OpTimeout:   2 * time.Second,
	}
	var ep *wire.ResilientClient
	for attempt := 0; ; attempt++ {
		ep, err = wire.DialResilient(nil, rawLis.Addr().String(),
			wire.DialOpts{TLS: clientConf}, policy, sm)
		if err == nil {
			break
		}
		if attempt == 5 {
			return nil, fmt.Errorf("chaos: composed dial: %w", err)
		}
	}
	defer ep.Close()

	clk := &clock.Clock{}
	eng, err := core.New(core.Config{
		Backing:   vfs.NewMemFS(),
		Endpoint:  ep,
		Clock:     clk,
		SyncMeter: sm,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: composed engine: %w", err)
	}

	// First half of the script, then the machine dies: fork the disk at its
	// current trace length and crash the fork (un-fsynced data gone), sever
	// every connection, recover a fresh server from the crashed disk, and
	// swap it in behind the same address.
	half := len(ops) / 2
	replay(eng, clk, ops[:half])

	crashed := disk.Fork(disk.Ops())
	crashed.Crash()
	j.Close()
	srv2 := server.NewWithOptions(nil, server.Options{FS: crashed})
	srv2.SetSyncMeter(sm)
	if _, err := srv2.LoadFile(stormSnap); err != nil {
		return nil, fmt.Errorf("chaos: composed recovery load: %w", err)
	}
	j2, err := server.OpenJournalFS(crashed, "journal", 0)
	if err != nil {
		return nil, fmt.Errorf("chaos: composed recovery journal: %w", err)
	}
	replayed, err := j2.Replay(srv2)
	if err != nil {
		return nil, fmt.Errorf("chaos: composed recovery replay: %w", err)
	}
	srv2.SetJournal(j2)
	backend.swap(srv2)
	tracked.sever()

	// Second half rides the recovered server through the same fault plan.
	replay(eng, clk, ops[half:])

	plan.Heal()
	var drainErr error
	for i := 0; i < cfg.DrainAttempts; i++ {
		clk.Advance(time.Minute)
		eng.Tick(clk.Now())
		if drainErr = eng.Drain(); drainErr == nil {
			break
		}
	}
	if drainErr != nil {
		return nil, fmt.Errorf("chaos: composed seed %d: drain after heal: %w", cfg.Seed, drainErr)
	}

	res := &ComposedResult{
		Seed:             cfg.Seed,
		StorageCrashes:   1,
		JournalReplayed:  replayed,
		DuplicateApplies: srv2.DuplicateApplies(),
		Sync:             sm.Snapshot(),
		Faults:           plan.Stats(),
	}
	res.Converged, res.Mismatch = compare(refSrv, srv2)
	res.Files = len(refSrv.Files())
	if res.DuplicateApplies != 0 {
		res.Converged = false
		if res.Mismatch == "" {
			res.Mismatch = fmt.Sprintf("%d duplicate applies", res.DuplicateApplies)
		}
	}
	return res, nil
}

package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// profiles are the fault mixes in the matrix. Probabilities are per
// connection operation; the retry budget must ride out several injected
// faults per RPC.
var profiles = []struct {
	name      string
	faults    faultinject.NetFaultConfig
	checksums bool
}{
	{name: "drops", faults: faultinject.NetFaultConfig{DropProb: 0.08}},
	{name: "partial-writes", faults: faultinject.NetFaultConfig{PartialProb: 0.06, DropProb: 0.02}},
	{name: "corruption", faults: faultinject.NetFaultConfig{CorruptProb: 0.05}, checksums: true},
	{name: "partitions", faults: faultinject.NetFaultConfig{PartitionProb: 0.02, PartitionOps: 15}},
	{name: "everything", faults: faultinject.NetFaultConfig{
		DropProb: 0.03, StallProb: 0.02, StallDur: 200 * time.Microsecond,
		CorruptProb: 0.02, PartialProb: 0.02,
		PartitionProb: 0.01, PartitionOps: 10,
	}, checksums: true},
}

// seedsPerProfile * len(profiles) = 200 randomized fault schedules, the
// acceptance floor. Each seed fixes both the op script and fault schedule,
// so a failure replays exactly from the seed echoed in its message.
const seedsPerProfile = 40

func TestChaosMatrixConverges(t *testing.T) {
	n := seedsPerProfile
	if testing.Short() {
		n = 5
	}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(n); seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					res, err := Run(Config{
						Seed:      seed,
						Ops:       60,
						Faults:    prof.faults,
						Checksums: prof.checksums,
					})
					if err != nil {
						t.Fatalf("chaos run failed (profile=%s seed=%d): %v", prof.name, seed, err)
					}
					if !res.Converged {
						t.Fatalf("DIVERGED (profile=%s seed=%d): %s\nfaults: %+v\nsync: %+v",
							prof.name, seed, res.Mismatch, res.Faults, res.Sync)
					}
					if res.DuplicateApplies != 0 {
						t.Fatalf("duplicate applies (profile=%s seed=%d): %d",
							prof.name, seed, res.DuplicateApplies)
					}
				})
			}
		})
	}
}

// TestChaosMatrixConvergesForcedGob reruns a slice of the fault matrix with
// the server forced to the legacy gob codec: the auto-negotiating client
// must fall back during its initial dial and every reconnect, and the whole
// fault-tolerance story must hold on the fallback path too.
func TestChaosMatrixConvergesForcedGob(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 2
	}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			for seed := int64(1); seed <= int64(n); seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					res, err := Run(Config{
						Seed:      seed,
						Ops:       60,
						Faults:    prof.faults,
						Checksums: prof.checksums,
						ForceGob:  true,
					})
					if err != nil {
						t.Fatalf("forced-gob chaos run failed (profile=%s seed=%d): %v", prof.name, seed, err)
					}
					if !res.Converged {
						t.Fatalf("DIVERGED under forced gob (profile=%s seed=%d): %s\nfaults: %+v\nsync: %+v",
							prof.name, seed, res.Mismatch, res.Faults, res.Sync)
					}
					if res.DuplicateApplies != 0 {
						t.Fatalf("duplicate applies under forced gob (profile=%s seed=%d): %d",
							prof.name, seed, res.DuplicateApplies)
					}
				})
			}
		})
	}
}

// TestChaosFaultFree sanity-checks the harness itself: with no faults the
// two stacks must converge and no retries may be metered.
func TestChaosFaultFree(t *testing.T) {
	res, err := Run(Config{Seed: 42, Ops: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fault-free run diverged: %s", res.Mismatch)
	}
	if res.Faults.Total() != 0 {
		t.Fatalf("faults injected with a zero profile: %+v", res.Faults)
	}
}

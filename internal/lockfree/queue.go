// Package lockfree provides a Michael–Scott lock-free FIFO queue built on
// atomic compare-and-swap, the technique the paper cites ([35] Valois) for
// implementing DeltaCFS's Sync Queue without blocking the intercepted file
// operations behind the uploader.
package lockfree

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is an unbounded multi-producer multi-consumer FIFO queue. The zero
// value is not usable; call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // sentinel; head.next is the first element
	tail atomic.Pointer[node[T]]
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Enqueue appends v to the queue.
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; retry
		}
		if next != nil {
			// Tail is lagging; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the oldest element. ok is false if the queue
// was observed empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Tail lagging behind a concurrent enqueue; help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			val := next.value
			var zero T
			next.value = zero // drop reference for GC
			return val, true
		}
	}
}

// Len returns the approximate number of elements (exact when quiescent).
func (q *Queue[T]) Len() int { return int(q.size.Load()) }

// Empty reports whether the queue was observed empty.
func (q *Queue[T]) Empty() bool { return q.head.Load().next.Load() == nil }

package lockfree

import (
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue #%d = %d, %v", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("Dequeue on drained queue returned ok")
	}
}

func TestEmpty(t *testing.T) {
	q := New[string]()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("new queue not empty")
	}
	q.Enqueue("x")
	if q.Empty() || q.Len() != 1 {
		t.Fatal("queue with one element reported empty")
	}
	q.Dequeue()
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("drained queue not empty")
	}
}

func TestInterleaved(t *testing.T) {
	q := New[int]()
	q.Enqueue(1)
	q.Enqueue(2)
	if v, _ := q.Dequeue(); v != 1 {
		t.Fatal("wrong order")
	}
	q.Enqueue(3)
	if v, _ := q.Dequeue(); v != 2 {
		t.Fatal("wrong order")
	}
	if v, _ := q.Dequeue(); v != 3 {
		t.Fatal("wrong order")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const producers = 4
	const consumers = 4
	const perProducer = 5000

	q := New[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(p*perProducer + i)
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]bool, producers*perProducer)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					select {
					case <-done:
						// Producers finished; drain whatever remains.
						for {
							v, ok := q.Dequeue()
							if !ok {
								return
							}
							mu.Lock()
							seen[v] = true
							mu.Unlock()
						}
					default:
						continue
					}
				}
				mu.Lock()
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perProducer)
	}
}

func TestPerProducerOrderPreserved(t *testing.T) {
	// With one consumer, each producer's elements must appear in its own
	// enqueue order (FIFO per producer), even with concurrent producers.
	const producers = 3
	const perProducer = 2000
	q := New[[2]int]() // [producer, seq]
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()

	last := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		if v[1] != last[v[0]]+1 {
			t.Fatalf("producer %d: got seq %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p := 0; p < producers; p++ {
		if last[p] != perProducer-1 {
			t.Fatalf("producer %d: only %d elements drained", p, last[p]+1)
		}
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Enqueue(1)
			q.Dequeue()
		}
	})
}

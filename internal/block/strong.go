package block

import "crypto/md5"

// StrongSize is the size in bytes of a strong checksum (MD5, as in librsync).
const StrongSize = md5.Size

// Strong is the strong block checksum: MD5, the digest librsync uses and the
// one the paper's modified librsync replaces with bitwise comparison when
// both file versions are local.
type Strong [StrongSize]byte

// StrongSum computes the strong checksum of data.
func StrongSum(data []byte) Strong { return md5.Sum(data) }

// Sig is the signature of one fixed-size block of a file: its index within
// the file, its weak rolling checksum and its strong checksum. A file
// signature is a []Sig plus the block size and total length, produced by
// rsync.Signature.
type Sig struct {
	Index  int    // block number within the file
	Weak   uint32 // rolling checksum of the block
	Strong Strong // MD5 of the block
}

package block

// SumRange computes the per-block signatures of blocks [lo, hi) of data and
// stores them at out[lo:hi]. Block i covers data[i*blockSize : (i+1)*blockSize]
// (the last block may be short). It is the shard worker of the parallel
// signature path in internal/rsync: disjoint ranges of out may be filled
// concurrently because each call writes only its own index range and reads
// data immutably.
func SumRange(out []Sig, data []byte, blockSize int, withStrong bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		a := i * blockSize
		b := a + blockSize
		if b > len(data) {
			b = len(data)
		}
		s := Sig{Index: i, Weak: WeakSum(data[a:b])}
		if withStrong {
			s.Strong = StrongSum(data[a:b])
		}
		out[i] = s
	}
}

package block

import (
	"bytes"
	"crypto/md5"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRollingEmpty(t *testing.T) {
	var r Rolling
	if r.Sum() != 0 || r.Len() != 0 {
		t.Fatalf("empty rolling = (%d, %d), want (0, 0)", r.Sum(), r.Len())
	}
}

func TestRollingUpdateMatchesOneShot(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	one := NewRolling(data)
	var inc Rolling
	for _, c := range data {
		inc.Update([]byte{c})
	}
	if one.Sum() != inc.Sum() {
		t.Fatalf("incremental sum %#x != one-shot sum %#x", inc.Sum(), one.Sum())
	}
}

func TestRollingRollMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	const win = 512
	r := NewRolling(data[:win])
	for i := win; i < len(data); i++ {
		r.Roll(data[i-win], data[i])
		want := WeakSum(data[i-win+1 : i+1])
		if r.Sum() != want {
			t.Fatalf("roll at %d: got %#x, want %#x", i, r.Sum(), want)
		}
		if r.Len() != win {
			t.Fatalf("roll changed window length to %d", r.Len())
		}
	}
}

func TestRollingRollOnEmptyWindow(t *testing.T) {
	var r Rolling
	r.Roll(0, 'x')
	if r.Sum() != WeakSum([]byte{'x'}) {
		t.Fatalf("roll on empty window: got %#x, want %#x", r.Sum(), WeakSum([]byte{'x'}))
	}
	if r.Len() != 1 {
		t.Fatalf("window length = %d, want 1", r.Len())
	}
}

func TestRollingReset(t *testing.T) {
	r := NewRolling([]byte("abc"))
	r.Reset()
	if r.Sum() != 0 || r.Len() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: rolling a window across any buffer always agrees with direct
// recomputation of the window contents.
func TestRollingRollProperty(t *testing.T) {
	f := func(data []byte, winSeed uint8) bool {
		if len(data) < 2 {
			return true
		}
		win := 1 + int(winSeed)%(len(data)-1)
		r := NewRolling(data[:win])
		for i := win; i < len(data); i++ {
			r.Roll(data[i-win], data[i])
			if r.Sum() != WeakSum(data[i-win+1:i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal buffers have equal weak sums (determinism).
func TestWeakSumDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		cp := append([]byte(nil), data...)
		return WeakSum(data) == WeakSum(cp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeakSumDistinguishesPermutations(t *testing.T) {
	// The b component makes the checksum order-sensitive, unlike a plain
	// byte sum. "ab" vs "ba" must differ.
	if WeakSum([]byte("ab")) == WeakSum([]byte("ba")) {
		t.Fatal("weak sum failed to distinguish byte order")
	}
}

func TestStrongSumMatchesMD5(t *testing.T) {
	data := []byte("hello, delta sync")
	if got, want := StrongSum(data), md5.Sum(data); got != Strong(want) {
		t.Fatalf("StrongSum = %x, want %x", got, want)
	}
}

func TestStrongSumDistinct(t *testing.T) {
	a := StrongSum([]byte("a"))
	b := StrongSum([]byte("b"))
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("distinct inputs produced identical strong sums")
	}
}

func BenchmarkRollingUpdate(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r Rolling
		r.Update(data)
	}
}

func BenchmarkRollingRoll(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(data)
	const win = DefaultBlockSize
	r := NewRolling(data[:win])
	b.SetBytes(int64(len(data) - win))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr := r
		for j := win; j < len(data); j++ {
			rr.Roll(data[j-win], data[j])
		}
	}
}

func BenchmarkStrongSum(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(4)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StrongSum(data)
	}
}

// Package block implements the checksum primitives shared by the rsync
// engine and the integrity subsystem: the Adler-style rolling (weak) checksum
// used by rsync [Tridgell 1996], and the MD5 strong checksum used by
// librsync. DeltaCFS reuses the rolling checksum as its 4 KB block-integrity
// checksum (paper §III-E), which is why it lives in its own package rather
// than inside internal/rsync.
package block

// DefaultBlockSize is the rsync block granularity used throughout the paper:
// 4 KB, matching both librsync's delta granularity and the integrity
// checksum block size.
const DefaultBlockSize = 4096

const rollMod = 1 << 16

// Rolling is the rsync weak checksum over a sliding window. It supports O(1)
// Roll updates as the window advances one byte. The zero value is an empty
// checksum over an empty window.
type Rolling struct {
	a, b uint32
	n    int // window length
}

// NewRolling computes the rolling checksum of data in one pass.
func NewRolling(data []byte) Rolling {
	var r Rolling
	r.Update(data)
	return r
}

// Update extends the checksum with data, growing the window.
func (r *Rolling) Update(data []byte) {
	a, b := r.a, r.b
	for _, c := range data {
		a += uint32(c)
		b += a
	}
	r.a = a % rollMod
	r.b = b % rollMod
	r.n += len(data)
}

// Roll slides the window one byte forward: out leaves the window, in enters
// it. The window length is unchanged. Roll on an empty window is equivalent
// to Update with one byte.
func (r *Rolling) Roll(out, in byte) {
	if r.n == 0 {
		r.Update([]byte{in})
		return
	}
	// a' = a - out + in; b' = b - n*out + a'
	r.a = (r.a + rollMod + uint32(in) - uint32(out)) % rollMod
	r.b = (r.b + rollMod*uint32(r.n) - uint32(r.n)*uint32(out) + r.a) % rollMod
}

// Sum returns the 32-bit checksum value (b<<16 | a).
func (r Rolling) Sum() uint32 { return r.b<<16 | r.a }

// Len returns the current window length in bytes.
func (r Rolling) Len() int { return r.n }

// Reset returns the checksum to its initial empty state.
func (r *Rolling) Reset() { *r = Rolling{} }

// WeakSum is a convenience that returns the rolling checksum of data.
func WeakSum(data []byte) uint32 { return NewRolling(data).Sum() }

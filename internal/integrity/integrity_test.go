package integrity

import (
	"math/rand"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/metrics"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	kv, err := kvstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kv.Close() })
	return New(kv, nil)
}

func blockReader(content *[]byte) func(blockIdx int64) ([]byte, error) {
	return func(b int64) ([]byte, error) {
		lo := b * BlockSize
		hi := lo + BlockSize
		c := *content
		if lo >= int64(len(c)) {
			return nil, nil
		}
		if hi > int64(len(c)) {
			hi = int64(len(c))
		}
		return c[lo:hi], nil
	}
}

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func TestSetFileAndVerifyClean(t *testing.T) {
	s := newStore(t)
	content := randBytes(1, 3*BlockSize+100)
	if err := s.SetFile("f", content); err != nil {
		t.Fatal(err)
	}
	bad, err := s.Verify("f", content)
	if err != nil || len(bad) != 0 {
		t.Fatalf("Verify clean = %v, %v", bad, err)
	}
}

func TestVerifyDetectsBitFlip(t *testing.T) {
	s := newStore(t)
	content := randBytes(2, 4*BlockSize)
	if err := s.SetFile("f", content); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in block 2, as the paper's debugfs experiment does.
	corrupted := append([]byte(nil), content...)
	corrupted[2*BlockSize+17] ^= 0x01
	bad, err := s.Verify("f", corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("bad blocks = %v, want [2]", bad)
	}
}

func TestVerifyDetectsLengthChange(t *testing.T) {
	s := newStore(t)
	content := randBytes(3, 2*BlockSize)
	s.SetFile("f", content)
	// Data appended behind the interception layer's back.
	grown := append(append([]byte(nil), content...), randBytes(4, BlockSize)...)
	bad, _ := s.Verify("f", grown)
	if len(bad) == 0 {
		t.Fatal("silent growth not detected")
	}
	// Data truncated behind our back.
	bad, _ = s.Verify("f", content[:BlockSize])
	if len(bad) == 0 {
		t.Fatal("silent truncation not detected")
	}
}

func TestUpdateRangeTracksWrites(t *testing.T) {
	s := newStore(t)
	content := randBytes(5, 4*BlockSize)
	s.SetFile("f", content)

	// Overwrite a span crossing a block boundary, then update checksums
	// for exactly that range.
	copy(content[BlockSize-10:BlockSize+20], randBytes(6, 30))
	if err := s.UpdateRange("f", BlockSize-10, 30, blockReader(&content)); err != nil {
		t.Fatal(err)
	}
	bad, err := s.Verify("f", content)
	if err != nil || len(bad) != 0 {
		t.Fatalf("Verify after UpdateRange = %v, %v", bad, err)
	}
}

func TestUpdateRangeGrowsFile(t *testing.T) {
	s := newStore(t)
	content := randBytes(7, BlockSize)
	s.SetFile("f", content)
	content = append(content, randBytes(8, 2*BlockSize+5)...)
	if err := s.UpdateRange("f", BlockSize, 2*BlockSize+5, blockReader(&content)); err != nil {
		t.Fatal(err)
	}
	bad, _ := s.Verify("f", content)
	if len(bad) != 0 {
		t.Fatalf("bad blocks after growth = %v", bad)
	}
}

func TestTruncateDropsChecksums(t *testing.T) {
	s := newStore(t)
	content := randBytes(9, 4*BlockSize)
	s.SetFile("f", content)

	newSize := int64(BlockSize + 100)
	content = content[:newSize]
	if err := s.Truncate("f", newSize, blockReader(&content)); err != nil {
		t.Fatal(err)
	}
	bad, _ := s.Verify("f", content)
	if len(bad) != 0 {
		t.Fatalf("bad blocks after truncate = %v", bad)
	}
}

func TestTruncateToZero(t *testing.T) {
	s := newStore(t)
	content := randBytes(10, 2*BlockSize)
	s.SetFile("f", content)
	empty := []byte{}
	if err := s.Truncate("f", 0, blockReader(&empty)); err != nil {
		t.Fatal(err)
	}
	bad, _ := s.Verify("f", nil)
	if len(bad) != 0 {
		t.Fatalf("bad blocks for empty file = %v", bad)
	}
	has, _ := s.Has("f")
	if has {
		t.Fatal("checksums remain after truncate to zero")
	}
}

func TestRenameMovesChecksums(t *testing.T) {
	s := newStore(t)
	content := randBytes(11, 3*BlockSize)
	s.SetFile("a", content)
	other := randBytes(12, BlockSize)
	s.SetFile("b", other)

	if err := s.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	bad, _ := s.Verify("b", content)
	if len(bad) != 0 {
		t.Fatalf("bad blocks after rename = %v", bad)
	}
	has, _ := s.Has("a")
	if has {
		t.Fatal("source checksums remain after rename")
	}
}

func TestRemove(t *testing.T) {
	s := newStore(t)
	s.SetFile("f", randBytes(13, BlockSize))
	if err := s.Remove("f"); err != nil {
		t.Fatal(err)
	}
	has, _ := s.Has("f")
	if has {
		t.Fatal("checksums remain after Remove")
	}
}

func TestPathPrefixNoCollision(t *testing.T) {
	// "a" must not see checksums belonging to "a/b" or "ab".
	s := newStore(t)
	s.SetFile("a", randBytes(14, BlockSize))
	s.SetFile("a/b", randBytes(15, 2*BlockSize))
	s.SetFile("ab", randBytes(16, 3*BlockSize))

	bad, _ := s.Verify("a", randBytes(14, BlockSize))
	if len(bad) != 0 {
		t.Fatalf("cross-path contamination: %v", bad)
	}
	s.Remove("a")
	for p, n := range map[string]int{"a/b": 2, "ab": 3} {
		content := map[string][]byte{
			"a/b": randBytes(15, 2*BlockSize),
			"ab":  randBytes(16, 3*BlockSize),
		}[p]
		bad, _ := s.Verify(p, content)
		if len(bad) != 0 {
			t.Fatalf("Remove(a) damaged %s (%d blocks): %v", p, n, bad)
		}
	}
}

func TestVerifyChargesMeter(t *testing.T) {
	kv, _ := kvstore.Open("")
	defer kv.Close()
	m := metrics.NewCPUMeter(metrics.PC)
	s := New(kv, m)
	content := randBytes(17, 2*BlockSize)
	s.SetFile("f", content)
	before := m.Breakdown()["rolling_bytes"]
	s.Verify("f", content)
	after := m.Breakdown()["rolling_bytes"]
	if after-before != int64(len(content)) {
		t.Fatalf("Verify charged %d rolling bytes, want %d", after-before, len(content))
	}
}

func TestChecksumsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := randBytes(18, 3*BlockSize)
	if err := New(kv, nil).SetFile("f", content); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := kvstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	bad, err := New(kv2, nil).Verify("f", content)
	if err != nil || len(bad) != 0 {
		t.Fatalf("Verify after reopen = %v, %v", bad, err)
	}
	// The crash-inconsistency scenario: data changed while the store was
	// down (ordered-journaling torn write). Must be detected.
	content[BlockSize+5] ^= 0xff
	bad, _ = New(kv2, nil).Verify("f", content)
	if len(bad) != 1 {
		t.Fatalf("crash inconsistency not detected: %v", bad)
	}
}

func TestEmptyFileCleanVerify(t *testing.T) {
	s := newStore(t)
	if err := s.SetFile("f", nil); err != nil {
		t.Fatal(err)
	}
	bad, err := s.Verify("f", nil)
	if err != nil || len(bad) != 0 {
		t.Fatalf("empty file verify = %v, %v", bad, err)
	}
}

func BenchmarkUpdateRange(b *testing.B) {
	kv, _ := kvstore.Open("")
	defer kv.Close()
	s := New(kv, nil)
	content := randBytes(99, 1<<20)
	s.SetFile("f", content)
	rd := blockReader(&content)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.UpdateRange("f", 100_000, 64<<10, rd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify1MB(b *testing.B) {
	kv, _ := kvstore.Open("")
	defer kv.Close()
	s := New(kv, nil)
	content := randBytes(98, 1<<20)
	s.SetFile("f", content)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Verify("f", content); err != nil {
			b.Fatal(err)
		}
	}
}

// Package integrity implements DeltaCFS's Checksum Store (§III-E): per-file
// 4 KB-block checksums persisted in a key-value store, used to detect data
// corruption and (best-effort) crash inconsistency above the file system.
//
// The block checksum reuses the rsync rolling checksum — the paper's trick
// for sharing computation between delta encoding and integrity — so updating
// checksums after a write costs one cheap rolling pass over the touched
// blocks. Verification recomputes block checksums and reports mismatches;
// after a crash, the engine verifies every recently-modified file and pulls
// clean copies from the cloud for any that fail.
package integrity

import (
	"encoding/binary"
	"fmt"

	"repro/internal/block"
	"repro/internal/kvstore"
	"repro/internal/metrics"
)

// BlockSize is the checksum granularity (the paper's 4 KB).
const BlockSize = block.DefaultBlockSize

// Store maintains block checksums for a set of files.
type Store struct {
	kv    *kvstore.Store
	meter *metrics.CPUMeter
}

// New returns a store persisting into kv and charging CPU work to meter
// (either may be shared with other subsystems; meter may be nil).
func New(kv *kvstore.Store, meter *metrics.CPUMeter) *Store {
	return &Store{kv: kv, meter: meter}
}

func key(path string, blockIdx int64) []byte {
	k := make([]byte, 0, len(path)+12)
	k = append(k, "cs/"...)
	k = append(k, path...)
	k = append(k, 0) // NUL separator: paths cannot contain NUL, so no
	// file's key space is a prefix of another's
	k = binary.BigEndian.AppendUint64(k, uint64(blockIdx))
	return k
}

func pathPrefix(path string) []byte {
	return append(append([]byte("cs/"), path...), 0)
}

// UpdateRange recomputes checksums for the blocks of path covered by
// [off, off+n). readBlock must return the current (post-write) content of
// the given block, clipped to the file size — an empty slice for a block
// wholly beyond EOF.
func (s *Store) UpdateRange(path string, off, n int64, readBlock func(blockIdx int64) ([]byte, error)) error {
	if n <= 0 {
		return nil
	}
	first := off / BlockSize
	last := (off + n - 1) / BlockSize
	for b := first; b <= last; b++ {
		data, err := readBlock(b)
		if err != nil {
			return fmt.Errorf("integrity: read block %d of %s: %w", b, path, err)
		}
		if len(data) == 0 {
			if err := s.kv.Delete(key(path, b)); err != nil {
				return err
			}
			continue
		}
		s.meter.RollingHash(int64(len(data)))
		sum := block.WeakSum(data)
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], sum)
		if err := s.kv.Put(key(path, b), v[:]); err != nil {
			return err
		}
	}
	return nil
}

// SetFile replaces all checksums of path from its full content.
func (s *Store) SetFile(path string, content []byte) error {
	if err := s.Remove(path); err != nil {
		return err
	}
	for off := int64(0); off < int64(len(content)); off += BlockSize {
		end := off + BlockSize
		if end > int64(len(content)) {
			end = int64(len(content))
		}
		s.meter.RollingHash(end - off)
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], block.WeakSum(content[off:end]))
		if err := s.kv.Put(key(path, off/BlockSize), v[:]); err != nil {
			return err
		}
	}
	return nil
}

// Truncate drops checksums for blocks at or beyond size and recomputes the
// (possibly shortened) boundary block via readBlock.
func (s *Store) Truncate(path string, size int64, readBlock func(blockIdx int64) ([]byte, error)) error {
	// Remove whole blocks beyond the new end.
	firstGone := (size + BlockSize - 1) / BlockSize
	var stale [][]byte
	err := s.kv.Range(pathPrefix(path), func(k, v []byte) bool {
		idx := int64(binary.BigEndian.Uint64(k[len(k)-8:]))
		if idx >= firstGone {
			stale = append(stale, append([]byte(nil), k...))
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range stale {
		if err := s.kv.Delete(k); err != nil {
			return err
		}
	}
	if size%BlockSize != 0 {
		return s.UpdateRange(path, size-1, 1, readBlock)
	}
	return nil
}

// Rename moves all checksums from oldPath to newPath (replacing newPath's).
func (s *Store) Rename(oldPath, newPath string) error {
	if err := s.Remove(newPath); err != nil {
		return err
	}
	type kv struct {
		idx int64
		val []byte
	}
	var moved []kv
	err := s.kv.Range(pathPrefix(oldPath), func(k, v []byte) bool {
		moved = append(moved, kv{
			idx: int64(binary.BigEndian.Uint64(k[len(k)-8:])),
			val: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		return err
	}
	for _, m := range moved {
		if err := s.kv.Delete(key(oldPath, m.idx)); err != nil {
			return err
		}
		if err := s.kv.Put(key(newPath, m.idx), m.val); err != nil {
			return err
		}
	}
	return nil
}

// Remove drops all checksums for path.
func (s *Store) Remove(path string) error {
	var stale [][]byte
	err := s.kv.Range(pathPrefix(path), func(k, v []byte) bool {
		stale = append(stale, append([]byte(nil), k...))
		return true
	})
	if err != nil {
		return err
	}
	for _, k := range stale {
		if err := s.kv.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks content against path's stored checksums and returns the
// indexes of corrupted blocks: blocks whose checksum mismatches, plus blocks
// present in content but missing from the store and vice versa (data changed
// without the interception layer seeing it — the crash-inconsistency
// signature).
func (s *Store) Verify(path string, content []byte) ([]int64, error) {
	stored := make(map[int64]uint32)
	err := s.kv.Range(pathPrefix(path), func(k, v []byte) bool {
		idx := int64(binary.BigEndian.Uint64(k[len(k)-8:]))
		stored[idx] = binary.BigEndian.Uint32(v)
		return true
	})
	if err != nil {
		return nil, err
	}
	var bad []int64
	nBlocks := (int64(len(content)) + BlockSize - 1) / BlockSize
	for b := int64(0); b < nBlocks; b++ {
		lo := b * BlockSize
		hi := lo + BlockSize
		if hi > int64(len(content)) {
			hi = int64(len(content))
		}
		s.meter.RollingHash(hi - lo)
		want, ok := stored[b]
		if !ok || block.WeakSum(content[lo:hi]) != want {
			bad = append(bad, b)
		}
		delete(stored, b)
	}
	// Checksums for blocks the content no longer has: length changed
	// behind our back.
	for b := range stored {
		bad = append(bad, b)
	}
	return bad, nil
}

// VerifyRange checks only the blocks covered by [off, off+n) against stored
// checksums, reading current content via readBlock. Blocks with no stored
// checksum are not reported (the file may predate checksum tracking).
func (s *Store) VerifyRange(path string, off, n int64, readBlock func(blockIdx int64) ([]byte, error)) ([]int64, error) {
	if n <= 0 {
		return nil, nil
	}
	first := off / BlockSize
	last := (off + n - 1) / BlockSize
	var bad []int64
	for b := first; b <= last; b++ {
		v, ok, err := s.kv.Get(key(path, b))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		data, err := readBlock(b)
		if err != nil {
			return nil, err
		}
		s.meter.RollingHash(int64(len(data)))
		if block.WeakSum(data) != binary.BigEndian.Uint32(v) {
			bad = append(bad, b)
		}
	}
	return bad, nil
}

// Has reports whether any checksums exist for path.
func (s *Store) Has(path string) (bool, error) {
	found := false
	err := s.kv.Range(pathPrefix(path), func(k, v []byte) bool {
		found = true
		return false
	})
	return found, err
}

package server

import (
	"errors"
	"fmt"

	"repro/internal/rsync"
	"repro/internal/version"
	"repro/internal/wire"
)

// errConflict signals a base-version mismatch during application.
var errConflict = errors.New("server: base version mismatch")

// debugConflicts enables conflict tracing (tests only).
var debugConflicts = false

// txn records compensation data so a partially applied batch can be rolled
// back. Old content slices are retained by reference (mutating operations
// copy-on-write), so rollback is cheap and allocation-light. The caller
// holds the batch's shard locks (batchLocks) for every path the txn touches.
type txn struct {
	s *Server
	// sharing reports whether the pusher's group has more than one member;
	// it gates conflict-history retention. Sampled once by Push, before the
	// shard locks are taken.
	sharing bool
	// ops collects applied operations, appended to the server log on
	// commit only.
	ops []AppliedOp
	// prevFiles maps each touched path to its prior content slice (nil
	// plus absent=true for files that did not exist).
	prevFiles map[string]prevFile
	prevVers  map[string]version.ID
	prevDirs  map[string]bool
}

type prevFile struct {
	content []byte
	existed bool
}

func newTxn(s *Server, sharing bool) *txn {
	return &txn{
		s:         s,
		sharing:   sharing,
		prevFiles: make(map[string]prevFile),
		prevVers:  make(map[string]version.ID),
		prevDirs:  make(map[string]bool),
	}
}

// touch snapshots a path's state once.
func (t *txn) touch(path string) {
	if _, ok := t.prevFiles[path]; !ok {
		sh := t.s.shard(path)
		c, existed := sh.files[path]
		t.prevFiles[path] = prevFile{content: c, existed: existed}
		t.prevVers[path] = sh.getVer(path)
	}
}

func (t *txn) touchDir(path string) {
	if _, ok := t.prevDirs[path]; !ok {
		t.prevDirs[path] = t.s.shard(path).dirs[path]
	}
}

func (t *txn) rollback() {
	for p, pf := range t.prevFiles {
		sh := t.s.shard(p)
		if pf.existed {
			sh.files[p] = pf.content
		} else {
			delete(sh.files, p)
		}
		sh.setVer(p, t.prevVers[p])
	}
	for p, existed := range t.prevDirs {
		sh := t.s.shard(p)
		if existed {
			sh.dirs[p] = true
		} else {
			delete(sh.dirs, p)
		}
	}
}

// commit finalizes the transaction, appending to the server's striped
// applied-op log and recording history snapshots for conflict resolution
// when the pusher's sharing group has multiple members. The caller still
// holds the batch's shard locks, which is what makes the assigned commit
// sequence numbers agree with per-path commit order (applied.go).
func (t *txn) commit() {
	t.s.applied.append(t.ops)
	if !t.sharing {
		return
	}
	for p := range t.prevFiles {
		sh := t.s.shard(p)
		c, ok := sh.files[p]
		if !ok {
			continue
		}
		snap := append([]byte(nil), c...)
		t.s.meter.Copy(int64(len(snap)))
		h := append(sh.history[p], revision{ver: sh.getVer(p), content: snap})
		if len(h) > HistoryDepth {
			h = h[len(h)-HistoryDepth:]
		}
		sh.history[p] = h
	}
}

// mutable returns a content buffer for path that is safe to modify in place:
// the prior slice is preserved in the txn, so the first mutation of a path
// in a transaction copies it.
func (t *txn) mutable(path string, minLen int64) []byte {
	t.touch(path)
	cur := t.s.shard(path).files[path]
	n := int64(len(cur))
	if minLen > n {
		n = minLen
	}
	fresh := make([]byte, n)
	copy(fresh, cur)
	t.s.meter.Copy(int64(len(cur)))
	return fresh
}

// checkBase verifies the node's base version against the live map.
func (t *txn) checkBase(n *wire.Node) error {
	switch n.Kind {
	case wire.NMkdir, wire.NRmdir:
		return nil
	}
	cur := t.s.shard(n.Path).getVer(n.Path)
	if !version.CheckBase(cur, n.Base) {
		if debugConflicts {
			fmt.Printf("CONFLICT %s %s: server=%v node.Base=%v node.Ver=%v\n",
				n.Kind, n.Path, cur, n.Base, n.Ver)
		}
		return errConflict
	}
	return nil
}

// applyNode applies one node inside the transaction, including its version
// check and stamp. The caller holds the shard locks for every path the node
// names (Path, Dst, BasePath).
func (s *Server) applyNode(t *txn, n *wire.Node) error {
	if err := t.checkBase(n); err != nil {
		return err
	}
	t.ops = append(t.ops, AppliedOp{Kind: n.Kind, Path: n.Path})
	sh := s.shard(n.Path)
	switch n.Kind {
	case wire.NCreate:
		t.touch(n.Path)
		sh.files[n.Path] = nil

	case wire.NWrite:
		var maxEnd int64
		for _, e := range n.Extents {
			if e.Off < 0 {
				return fmt.Errorf("write %s: negative extent offset %d", n.Path, e.Off)
			}
			if end := e.Off + int64(len(e.Data)); end > maxEnd {
				maxEnd = end
			}
		}
		buf := t.mutable(n.Path, maxEnd)
		for _, e := range n.Extents {
			copy(buf[e.Off:], e.Data)
			s.meter.Copy(int64(len(e.Data)))
		}
		sh.files[n.Path] = buf

	case wire.NTruncate:
		t.touch(n.Path)
		cur, ok := sh.files[n.Path]
		if !ok {
			return fmt.Errorf("truncate: %s does not exist", n.Path)
		}
		if n.Size <= int64(len(cur)) {
			// Slicing shares the old array; the txn retains the original
			// slice header, so rollback still sees the full content.
			sh.files[n.Path] = cur[:n.Size:n.Size]
		} else {
			buf := make([]byte, n.Size)
			copy(buf, cur)
			s.meter.Copy(int64(len(cur)))
			sh.files[n.Path] = buf
		}

	case wire.NRename:
		t.touch(n.Path)
		t.touch(n.Dst)
		c, ok := sh.files[n.Path]
		if !ok {
			return fmt.Errorf("rename: %s does not exist", n.Path)
		}
		dsh := s.shard(n.Dst)
		dsh.files[n.Dst] = c
		delete(sh.files, n.Path)
		// version.Map.Rename semantics across (possibly) two shards.
		if v := sh.getVer(n.Path); !v.IsZero() {
			dsh.setVer(n.Dst, v)
			sh.setVer(n.Path, version.ID{})
		} else {
			dsh.setVer(n.Dst, version.ID{})
		}

	case wire.NLink:
		t.touch(n.Path)
		t.touch(n.Dst)
		c, ok := sh.files[n.Path]
		if !ok {
			return fmt.Errorf("link: %s does not exist", n.Path)
		}
		// The server store has no inodes; a link materializes as a copy
		// that shares the content slice (copied on next write).
		s.shard(n.Dst).files[n.Dst] = c

	case wire.NUnlink:
		t.touch(n.Path)
		if _, ok := sh.files[n.Path]; !ok {
			return fmt.Errorf("unlink: %s does not exist", n.Path)
		}
		delete(sh.files, n.Path)
		sh.setVer(n.Path, version.ID{})

	case wire.NMkdir:
		t.touchDir(n.Path)
		sh.dirs[n.Path] = true
		return nil

	case wire.NRmdir:
		t.touchDir(n.Path)
		delete(sh.dirs, n.Path)
		return nil

	case wire.NDelta:
		basePath := n.BasePath
		if basePath == "" {
			basePath = n.Path
		}
		base := s.shard(basePath).files[basePath]
		out, err := rsync.Patch(base, n.Delta, s.meter)
		if err != nil {
			return fmt.Errorf("delta on %s (base %s): %w", n.Path, basePath, err)
		}
		t.touch(n.Path)
		sh.files[n.Path] = out

	case wire.NFull:
		t.touch(n.Path)
		buf := append([]byte(nil), n.Full...)
		s.meter.Copy(int64(len(buf)))
		sh.files[n.Path] = buf

	case wire.NCDC:
		t.touch(n.Path)
		// Resolve every reference before storing any carried chunk: the
		// client built its references against the store's state at push
		// time, and inserting new chunks first could evict a chunk a later
		// reference in this very node still needs.
		resolved := make([][]byte, len(n.Chunks))
		for i, c := range n.Chunks {
			data := c.Data
			if data == nil {
				stored, ok := s.chunk(c.Hash)
				if !ok {
					return fmt.Errorf("cdc: %s references unknown chunk %x", n.Path, c.Hash[:4])
				}
				data = stored
			}
			if int64(len(data)) != c.Len {
				return fmt.Errorf("cdc: chunk %x length %d != %d", c.Hash[:4], len(data), c.Len)
			}
			resolved[i] = data
		}
		// Size the assembly buffer from the verified chunk lengths, not the
		// wire-claimed ones: by this point every resolved[i] has had its
		// actual length checked, so the sum cannot be inflated by a hostile
		// ChunkRef.Len.
		var total int64
		for i := range resolved {
			total += int64(len(resolved[i]))
		}
		// Store carried chunks per-stripe: no server-wide lock on the push
		// path. The resolved slices stay valid regardless of eviction (the
		// backing arrays outlive the map entries).
		buf := make([]byte, 0, total)
		for i, c := range n.Chunks {
			if c.Data != nil {
				s.storeChunk(c.Hash, append([]byte(nil), c.Data...))
			}
			buf = append(buf, resolved[i]...)
			s.meter.Copy(int64(len(resolved[i])))
		}
		sh.files[n.Path] = buf

	default:
		return fmt.Errorf("unknown node kind %d", n.Kind)
	}

	switch n.Kind {
	case wire.NUnlink, wire.NMkdir, wire.NRmdir:
		// No version to stamp: the path is gone or is a directory.
	case wire.NRename:
		if !n.Ver.IsZero() {
			sh.setVer(n.Path, version.ID{})
			s.shard(n.Dst).setVer(n.Dst, n.Ver)
		}
	case wire.NLink:
		if !n.Ver.IsZero() {
			s.shard(n.Dst).setVer(n.Dst, n.Ver) // the new name gets the version; the source keeps its own
		}
	default:
		if !n.Ver.IsZero() {
			sh.setVer(n.Path, n.Ver)
		}
	}
	return nil
}

// conflictEligible reports whether a losing node of this kind materializes
// a conflict copy (content-bearing kinds only).
func conflictEligible(k wire.NodeKind) bool {
	switch k {
	case wire.NMkdir, wire.NRmdir, wire.NUnlink, wire.NRename, wire.NLink, wire.NCreate:
		return false
	}
	return true
}

// conflictName is the deterministic path of the conflict copy a losing node
// would create. It is known before application (it depends only on the node
// and the pusher), which is what lets lockSetFor cover conflict shards up
// front.
func conflictName(n *wire.Node, from uint32) string {
	return fmt.Sprintf("%s.conflict-%d-%d", n.Path, from, n.Ver.Count)
}

// materializeConflict implements first-write-wins reconciliation: the
// server's current content stays the latest version; the losing update is
// applied to the base version it was made against (from history) and stored
// under a conflict name. Returns the conflict paths created. The caller
// holds the batch's shard locks, which cover every conflict name.
func (s *Server) materializeConflict(from uint32, nodes []*wire.Node) []string {
	var out []string
	for _, n := range nodes {
		if !conflictEligible(n.Kind) {
			continue
		}
		base, ok := s.historyContent(n.Path, n.Base)
		if !ok {
			// No retrievable base: fall back to an empty conflict marker
			// file so the user still learns about the lost update.
			base = nil
		}
		content, err := s.applyToContent(base, n)
		if err != nil {
			continue
		}
		name := conflictName(n, from)
		s.shard(name).files[name] = content
		out = append(out, name)
	}
	return out
}

// historyContent finds the retained snapshot of path at version v. A zero
// version resolves to empty content. The caller holds path's shard lock.
func (s *Server) historyContent(path string, v version.ID) ([]byte, bool) {
	if v.IsZero() {
		return nil, true
	}
	for _, rev := range s.shard(path).history[path] {
		if rev.ver == v {
			return rev.content, true
		}
	}
	return nil, false
}

// applyToContent applies a single content-bearing node to a standalone
// buffer (conflict materialization).
func (s *Server) applyToContent(base []byte, n *wire.Node) ([]byte, error) {
	switch n.Kind {
	case wire.NWrite:
		buf := append([]byte(nil), base...)
		for _, e := range n.Extents {
			if e.Off < 0 {
				return nil, fmt.Errorf("write %s: negative extent offset %d", n.Path, e.Off)
			}
			if end := e.Off + int64(len(e.Data)); end > int64(len(buf)) {
				grown := make([]byte, end)
				copy(grown, buf)
				buf = grown
			}
			copy(buf[e.Off:], e.Data)
		}
		return buf, nil
	case wire.NTruncate:
		if n.Size <= int64(len(base)) {
			return append([]byte(nil), base[:n.Size]...), nil
		}
		buf := make([]byte, n.Size)
		copy(buf, base)
		return buf, nil
	case wire.NDelta:
		return rsync.Patch(base, n.Delta, s.meter)
	case wire.NFull:
		return append([]byte(nil), n.Full...), nil
	case wire.NCDC:
		var buf []byte
		for _, c := range n.Chunks {
			data := c.Data
			if data == nil {
				stored, ok := s.chunk(c.Hash)
				if !ok {
					return nil, fmt.Errorf("cdc conflict: unknown chunk")
				}
				data = stored
			}
			buf = append(buf, data...)
		}
		return buf, nil
	}
	return nil, fmt.Errorf("node kind %v carries no content", n.Kind)
}

// EnableConflictDebug toggles conflict tracing (tests only).
func EnableConflictDebug(on bool) { debugConflicts = on }

package server

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// startTCP serves s on a loopback listener and returns its address plus the
// transport stats.
func startTCP(t *testing.T, s *Server, cfg wire.ServeConfig) (string, *wire.ServeStats) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	stats := &wire.ServeStats{}
	cfg.Stats = stats
	go wire.ServeWith(lis, s, cfg)
	return lis.Addr().String(), stats
}

// Throttle end-to-end over real TCP (the backpressure satellite): a pusher
// and a slow poller share a group; once the poller's outbox hits its depth
// bound the pusher's replies carry Throttled=true. When the slow client
// finally drains its queue, pushing is smooth again and both sides converge
// on the last content.
func TestThrottleBackpressureTCP(t *testing.T) {
	old := OutboxDepthLimit
	OutboxDepthLimit = 8
	defer func() { OutboxDepthLimit = old }()

	s := New(nil)
	addr, _ := startTCP(t, s, wire.ServeConfig{})

	const group = 7
	pusher, err := wire.DialWith(addr, wire.DialOpts{Group: group, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer pusher.Close()
	poller, err := wire.DialWith(addr, wire.DialOpts{Group: group, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer poller.Close()

	// The slow phase: the poller never polls, so forwarded batches pile up
	// in its outbox past the (shrunken) depth bound and the pusher must see
	// the throttle signal.
	var last []byte
	throttled := 0
	for i := 1; i <= 3*int(OutboxDepthLimit); i++ {
		content := []byte(fmt.Sprintf("v%d", i))
		n := &wire.Node{
			Kind: wire.NFull, Path: "shared/f", Full: content,
			Ver: v(1, uint64(i)),
		}
		if i > 1 {
			n.Base = v(1, uint64(i-1))
		}
		r, err := pusher.Push(&wire.Batch{Seq: uint64(i), Nodes: []*wire.Node{n}})
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: %+v", i, r)
		}
		last = content
		if r.Throttled {
			throttled++
		}
	}
	if throttled == 0 {
		t.Fatal("no push was throttled despite an unpolled peer past the outbox bound")
	}

	// The drain phase: the slow client catches up. Eviction means it gets at
	// most the bounded tail, and afterwards its queue is empty.
	got, err := poller.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > int(OutboxDepthLimit) {
		t.Fatalf("drained %d batches, want 1..%d (bounded tail)", len(got), OutboxDepthLimit)
	}
	if again, err := poller.Poll(); err != nil || len(again) != 0 {
		t.Fatalf("second poll: %d batches, err %v; want empty", len(again), err)
	}

	// With the queue drained, pushing is throttle-free again.
	r, err := pusher.Push(&wire.Batch{Seq: uint64(3*OutboxDepthLimit + 1), Nodes: []*wire.Node{{
		Kind: wire.NFull, Path: "shared/f", Full: []byte("final"),
		Base: v(1, uint64(3*OutboxDepthLimit)), Ver: v(1, uint64(3*OutboxDepthLimit+1)),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Throttled {
		t.Fatalf("push after drain still throttled: %+v", r)
	}
	last = []byte("final")

	// Convergence: the slow side fetches the file and sees the last write.
	fr, err := poller.Fetch("shared/f")
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Exists || !bytes.Equal(fr.Content, last) {
		t.Fatalf("poller sees %q, want %q", fr.Content, last)
	}
}

// Sharing groups over TCP: forwarding stays inside the group — a client in
// another group polls nothing — and group members see each other's pushes.
func TestGroupScopedForwardingTCP(t *testing.T) {
	s := New(nil)
	addr, _ := startTCP(t, s, wire.ServeConfig{})

	a1, err := wire.DialWith(addr, wire.DialOpts{Group: 1, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := wire.DialWith(addr, wire.DialOpts{Group: 1, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	b1, err := wire.DialWith(addr, wire.DialOpts{Group: 2, OpTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()

	if r, err := a1.Push(&wire.Batch{Seq: 1, Nodes: []*wire.Node{{
		Kind: wire.NFull, Path: "doc", Full: []byte("from-a1"), Ver: v(1, 1),
	}}}); err != nil || r.Statuses[0] != wire.StatusOK {
		t.Fatalf("push: %+v, %v", r, err)
	}

	if got, err := a2.Poll(); err != nil || len(got) != 1 {
		t.Fatalf("group peer polled %d batches (%v), want 1", len(got), err)
	}
	if got, err := b1.Poll(); err != nil || len(got) != 0 {
		t.Fatalf("out-of-group client polled %d batches (%v), want 0", len(got), err)
	}
}

package server

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"

	"repro/internal/block"
	"repro/internal/storagefault"
	"repro/internal/version"
	"repro/internal/wire"
)

// The paper leaves the server-side system design to future work (§VI),
// envisioning wimpy machines fronting large disks. This file provides the
// piece a deployable server minimally needs: durable state. Save serializes
// the full server state (files, versions, the bounded chunk store) and Load
// restores it, so cmd/deltacfs-server can persist across restarts with a
// snapshot-on-shutdown (plus periodic) policy. Client outboxes are volatile
// by design: a reconnecting client re-syncs via Head metadata.
//
// The snapshot format is shard-agnostic: shards are merged into the flat
// maps of snapshot v2 on Save and redistributed on Load, so snapshots move
// freely between servers with different shard counts (including the
// 1-shard oracle configuration).

// snapshotReplyCache is one client's serialized idempotency state. Seqs and
// Replies are parallel slices in FIFO insertion order.
type snapshotReplyCache struct {
	MaxSeq  uint64
	Seqs    []uint64
	Replies []*wire.PushReply
}

// snapshotState is the serialized form of the server's durable state.
type snapshotState struct {
	Version int
	Files   map[string][]byte
	Dirs    map[string]bool
	Vers    map[string]version.ID
	Chunks  map[block.Strong][]byte
	// ChunkFIFO preserves eviction order across restarts so clients that
	// also persisted their trackers stay in lockstep.
	ChunkFIFO []block.Strong
	Applied   []AppliedOp

	// Version 2 fields. NextClient keeps the ID space collision-free when
	// clients reattach after a restart; Dedup and AppliedSeqs carry the
	// idempotency state so a replay of a batch applied just before a crash
	// is still absorbed (and still audited) after recovery.
	NextClient  uint32
	Dedup       map[uint32]snapshotReplyCache
	AppliedSeqs map[uint32]map[uint64]int

	// Version 3 field: sharing-group membership (client ID → group ID) for
	// every registered client, so forwarding scope survives a restart.
	Groups map[uint32]uint32
}

const snapshotVersion = 3

// Save writes the server's durable state to w. It quiesces the server for
// the duration: per-client push locks are taken in ascending client-ID
// order, then every shard lock (the same outermost-first order Push uses,
// so a snapshot can never deadlock with in-flight batches).
func (s *Server) Save(w io.Writer) error {
	refs := s.clientSnapshot()
	for _, ref := range refs {
		ref.cs.pushMu.Lock()
	}
	defer func() {
		for i := len(refs) - 1; i >= 0; i-- {
			refs[i].cs.pushMu.Unlock()
		}
	}()
	s.lockAllShards()
	defer s.unlockAllShards()
	s.clientMu.RLock()
	nextClient := s.nextClient
	groups := make(map[uint32]uint32)
	for gid, gi := range s.groups {
		for id := range gi.members {
			groups[id] = gid
		}
	}
	s.clientMu.RUnlock()
	// Quiesce the chunk store: the insert lock stops FIFO/byte changes,
	// then each stripe lock in ascending order stops residency reads from
	// observing the merge mid-flight.
	s.chunkInsertMu.Lock()
	defer s.chunkInsertMu.Unlock()
	for i := range s.chunkStripes {
		s.chunkStripes[i].mu.Lock()
	}
	defer func() {
		for i := len(s.chunkStripes) - 1; i >= 0; i-- {
			s.chunkStripes[i].mu.Unlock()
		}
	}()
	// Merge the residency stripes into the snapshot's single chunk map; the
	// FIFO is already global and goes out as-is.
	chunks := make(map[block.Strong][]byte)
	for i := range s.chunkStripes {
		for h, d := range s.chunkStripes[i].data {
			chunks[h] = d
		}
	}
	state := snapshotState{
		Version:     snapshotVersion,
		Files:       make(map[string][]byte),
		Dirs:        make(map[string]bool),
		Vers:        make(map[string]version.ID),
		Chunks:      chunks,
		ChunkFIFO:   s.chunkFIFO,
		Applied:     s.applied.snapshot(),
		NextClient:  nextClient,
		Dedup:       make(map[uint32]snapshotReplyCache, len(refs)),
		AppliedSeqs: make(map[uint32]map[uint64]int, len(refs)),
		Groups:      groups,
	}
	for _, sh := range s.shards {
		for p, c := range sh.files {
			state.Files[p] = c
			if v := sh.getVer(p); !v.IsZero() {
				state.Vers[p] = v
			}
		}
		for p := range sh.dirs {
			state.Dirs[p] = true
		}
	}
	for _, ref := range refs {
		rc := ref.cs.dedup
		if rc.maxSeq == 0 && len(rc.order) == 0 && len(ref.cs.appliedSeqs) == 0 {
			continue
		}
		src := snapshotReplyCache{MaxSeq: rc.maxSeq, Seqs: rc.order}
		for _, seq := range rc.order {
			src.Replies = append(src.Replies, rc.replies[seq])
		}
		state.Dedup[ref.id] = src
		if len(ref.cs.appliedSeqs) > 0 {
			state.AppliedSeqs[ref.id] = ref.cs.appliedSeqs
		}
	}
	if err := gob.NewEncoder(w).Encode(&state); err != nil {
		return fmt.Errorf("server: save: %w", err)
	}
	// The quiesce set is still held: every batch the snapshot captured has
	// been journaled (Record runs under shard locks before apply), and no
	// batch can commit until Save returns. Capturing the journal boundary
	// here means TruncateSnapshotted drops exactly the entries the snapshot
	// covers — nothing the snapshot missed. The boundary is only committed
	// durably by SaveFile once the snapshot itself is atomically in place.
	if j := s.journal.Load(); j != nil {
		// Capturing the boundary under the quiesce set is the correctness
		// condition: no batch can journal or commit until Save releases, so
		// the boundary covers exactly what the snapshot holds.
		//deltavet:allow blockunderlock journal boundary must be captured while the snapshot quiesce set is held
		j.captureSnapshot()
	}
	return nil
}

// Load restores state saved by Save into a fresh server. It must be called
// before any client registers.
func (s *Server) Load(r io.Reader) error {
	var state snapshotState
	if err := gob.NewDecoder(r).Decode(&state); err != nil {
		return fmt.Errorf("server: load: %w", err)
	}
	// Version 1 snapshots (pre idempotency) load fine: the dedup state
	// simply rebuilds empty, which is safe — at worst one ambiguous replay
	// from before the upgrade re-applies. Version 2 (pre sharing-group)
	// snapshots rebuild with no memberships; clients rejoin on Attach.
	if state.Version < 1 || state.Version > snapshotVersion {
		return fmt.Errorf("server: load: unsupported snapshot version %d", state.Version)
	}
	// Registration check first, on its own (clientMu is never held while
	// shard locks are acquired — the Push lock order). Load's contract is a
	// fresh, unshared server; the locks below are belt-and-suspenders.
	s.clientMu.Lock()
	if s.nextClient != 0 {
		s.clientMu.Unlock()
		return fmt.Errorf("server: load: clients already registered")
	}
	s.clientMu.Unlock()
	s.lockAllShards()

	for _, sh := range s.shards {
		sh.files = make(map[string][]byte)
		sh.dirs = make(map[string]bool)
		sh.vers = make(map[string]version.ID)
		sh.history = make(map[string][]revision)
	}
	for p, c := range state.Files {
		s.shard(p).files[p] = c
	}
	if state.Dirs != nil {
		for p := range state.Dirs {
			s.shard(p).dirs[p] = true
		}
	} else {
		s.shard(".").dirs["."] = true
	}
	for p, v := range state.Vers {
		s.shard(p).setVer(p, v)
	}
	s.unlockAllShards()

	// Restore the chunk store: the global FIFO comes back verbatim, the
	// single snapshot map is redistributed across the residency stripes.
	s.chunkInsertMu.Lock()
	for i := range s.chunkStripes {
		s.chunkStripes[i].mu.Lock()
	}
	for i := range s.chunkStripes {
		s.chunkStripes[i].data = make(map[block.Strong][]byte)
	}
	var chunkBytes int64
	for h, d := range state.Chunks {
		s.chunkStripeOf(h).data[h] = d
		chunkBytes += int64(len(d))
	}
	s.chunkFIFO = state.ChunkFIFO
	s.chunkBytes.Store(chunkBytes)
	for i := len(s.chunkStripes) - 1; i >= 0; i-- {
		s.chunkStripes[i].mu.Unlock()
	}
	s.chunkInsertMu.Unlock()

	s.applied.replace(state.Applied)

	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	s.nextClient = state.NextClient
	for id, src := range state.Dedup {
		cs := s.clients[id]
		if cs == nil {
			cs = newClientState()
			s.clients[id] = cs
		}
		rc := &replyCache{
			maxSeq:  src.MaxSeq,
			replies: make(map[uint64]*wire.PushReply, len(src.Seqs)),
			order:   src.Seqs,
		}
		for i, seq := range src.Seqs {
			if i < len(src.Replies) {
				rc.replies[seq] = src.Replies[i]
			}
		}
		cs.dedup = rc
	}
	for id, seqs := range state.AppliedSeqs {
		cs := s.clients[id]
		if cs == nil {
			cs = newClientState()
			s.clients[id] = cs
		}
		if seqs != nil {
			cs.appliedSeqs = seqs
		}
	}
	// Restore sharing-group membership (v3). Members come back registered so
	// forwarding scope — and the sharing gate for conflict history — matches
	// the pre-restart state even before every client reattaches.
	for id, gid := range state.Groups {
		cs := s.clients[id]
		if cs == nil {
			cs = newClientState()
			s.clients[id] = cs
		}
		fresh := !cs.registered
		cs.registered = true
		s.joinGroupLocked(id, cs, gid, fresh)
	}
	return nil
}

// SaveFile writes the state to path atomically (write temp, fsync, rename,
// fsync the directory so the rename itself survives a crash). All IO goes
// through the server's storagefault.FS so crash-point harnesses can fork the
// disk at every step of the replace sequence.
func (s *Server) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := storagefault.Create(s.fsys, tmp)
	if err != nil {
		return fmt.Errorf("server: save file: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := s.Save(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fsys.Rename(tmp, path); err != nil {
		return err
	}
	if err := syncDir(s.fsys, filepath.Dir(path)); err != nil {
		return err
	}
	// Only now — snapshot renamed and the rename made durable — may the
	// journal's snapshot boundary advance. Committing it any earlier lets a
	// crash (or a failed snapshot fsync) truncate acked entries whose
	// snapshot never landed.
	if j := s.journal.Load(); j != nil {
		j.commitSnapshot()
	}
	return nil
}

// syncDirHook, when non-nil, replaces the directory fsync. Crash-ordering
// tests intercept it to observe the rename -> dir-fsync sequence.
var syncDirHook func(dir string) error

// syncDir makes a completed rename in dir durable: until the parent
// directory's metadata is fsynced, a crash may forget the rename and
// resurrect the previous snapshot under the final name.
func syncDir(fsys storagefault.FS, dir string) error {
	if syncDirHook != nil {
		return syncDirHook(dir)
	}
	return fsys.SyncDir(dir)
}

// LoadFile restores state from path. A missing file is not an error (fresh
// server); the second return value reports whether state was loaded.
func (s *Server) LoadFile(path string) (bool, error) {
	f, err := storagefault.Open(s.fsys, path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("server: load file: %w", err)
	}
	defer f.Close()
	if err := s.Load(bufio.NewReader(f)); err != nil {
		return false, err
	}
	return true, nil
}

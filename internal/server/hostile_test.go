package server

import (
	"strings"
	"testing"

	"repro/internal/rsync"
	"repro/internal/wire"
)

// Hostile-input tests: a peer speaking the wire protocol but lying in every
// field it controls. The server must reject at the Push boundary — no
// partial application, no panic, no unbounded allocation.

func hostilePush(t *testing.T, s *Server, from uint32, nodes ...*wire.Node) *wire.PushReply {
	t.Helper()
	return s.Push(from, &wire.Batch{Client: from, Nodes: nodes})
}

func wantRejected(t *testing.T, r *wire.PushReply, frag string) {
	t.Helper()
	if r.Err == "" || !strings.Contains(r.Err, frag) {
		t.Fatalf("reply err = %q, want mention of %q", r.Err, frag)
	}
	for i, st := range r.Statuses {
		if st != wire.StatusError {
			t.Fatalf("node %d status = %d, want StatusError", i, st)
		}
	}
}

func TestPushRejectsTraversalPath(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	r := hostilePush(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "ok", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NCreate, Path: "../../etc/cron.d/x", Ver: v(cli, 2)},
	)
	wantRejected(t, r, "escapes")
	// Rejection is atomic: the well-formed first node must not have landed.
	if _, ok := s.FileContent("ok"); ok {
		t.Fatal("node applied from a rejected batch")
	}
}

func TestPushRejectsAbsolutePath(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	wantRejected(t, hostilePush(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "/etc/passwd", Ver: v(cli, 1)},
	), "absolute")
}

func TestPushRejectsNegativeExtentOffset(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	wantRejected(t, hostilePush(t, s, cli,
		&wire.Node{Kind: wire.NWrite, Path: "f", Ver: v(cli, 1),
			Extents: []wire.Extent{{Off: -8, Data: []byte("underflow")}}},
	), "negative offset")
}

func TestPushRejectsLyingChunkLength(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	wantRejected(t, hostilePush(t, s, cli,
		&wire.Node{Kind: wire.NCDC, Path: "f", Ver: v(cli, 1),
			Chunks: []wire.ChunkRef{{Len: 1 << 40, Data: []byte("tiny")}}},
	), "claims")
}

func TestPushRejectsHugeDeltaTarget(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	wantRejected(t, hostilePush(t, s, cli,
		&wire.Node{Kind: wire.NDelta, Path: "f", Ver: v(cli, 1),
			Delta: &rsync.Delta{TargetLen: -1}},
	), "negative delta target")
}

func TestPushRejectionLeavesNoDedupState(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	bad := &wire.Batch{Client: cli, Seq: 7, Nodes: []*wire.Node{
		{Kind: wire.NCreate, Path: "/abs", Ver: v(cli, 1)},
	}}
	if r := s.Push(cli, bad); r.Err == "" {
		t.Fatal("malformed batch accepted")
	}
	// The same Seq with a well-formed batch must apply normally — the
	// rejected attempt must not have been recorded as Seq 7's outcome.
	good := &wire.Batch{Client: cli, Seq: 7, Nodes: []*wire.Node{
		{Kind: wire.NCreate, Path: "f", Ver: v(cli, 1)},
	}}
	mustOK(t, s.Push(cli, good))
	if _, ok := s.FileContent("f"); !ok {
		t.Fatal("well-formed retry of a rejected Seq did not apply")
	}
}

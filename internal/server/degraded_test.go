package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storagefault"
	"repro/internal/wire"
)

// A journal whose first fsync fails must push the server into read-only
// degraded mode: the failing push is refused with the typed degraded marker,
// later writes are refused without touching the poisoned WAL, and reads keep
// serving. After the operator swaps in healthy storage (new journal +
// ClearDegraded) the buffered batch lands and the client converges.
func TestDegradedModeEndToEnd(t *testing.T) {
	disk := storagefault.NewSimDisk()
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 1, FailSyncAt: 1})

	sm := &metrics.SyncMeter{}
	s := New(nil)
	s.SetSyncMeter(sm)
	j, err := OpenJournalFS(inj, "journal", 0) // window 0: fsync per record
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j)

	push := func(seq uint64, content string) *wire.PushReply {
		n := &wire.Node{Kind: wire.NFull, Path: "a/f", Full: []byte(content), Ver: v(1, seq)}
		if seq > 1 {
			n.Base = v(1, seq-1)
		}
		return s.Push(1, &wire.Batch{Seq: seq, Nodes: []*wire.Node{n}})
	}

	r := push(1, "v1")
	if r.Err == "" || !wire.IsDegradedMsg(r.Err) {
		t.Fatalf("push over failing fsync: want degraded refusal, got %+v", r)
	}
	if s.Degraded() == "" {
		t.Fatal("server did not enter degraded mode after journal fsync failure")
	}
	// The refused batch must not have been applied: a refusal is a promise
	// that the client can safely keep the batch buffered.
	if _, ok := s.FileContent("a/f"); ok {
		t.Fatal("refused batch was applied")
	}

	// Later writes are refused up front (the WAL is poisoned; retrying the
	// fsync would be the fsyncgate bug) but reads still serve.
	r = push(1, "v1")
	if !wire.IsDegradedMsg(r.Err) {
		t.Fatalf("second push: want degraded refusal, got %+v", r)
	}
	if _, ok := s.Head("a/f"); ok {
		t.Fatal("refused path should have no head yet, but reads must not panic")
	}
	if got := sm.DegradedRejects(); got < 2 {
		t.Fatalf("DegradedRejects = %d, want >= 2", got)
	}

	// Recovery: healthy journal, clear the flag, client retries its buffered
	// batch and converges.
	j2, err := OpenJournalFS(storagefault.NewSimDisk(), "journal", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j2)
	s.ClearDegraded()
	if r := push(1, "v1"); r.Err != "" {
		t.Fatalf("push after recovery: %v", r.Err)
	}
	if c, ok := s.FileContent("a/f"); !ok || string(c) != "v1" {
		t.Fatalf("after recovery FileContent = %q, %v", c, ok)
	}
}

// Over real TCP, a degraded refusal must reach ResilientClient as the typed
// ErrServerDegraded, be classified retry-after-backoff (no reconnect churn:
// redialing cannot fix a full disk), and surface as the typed error once the
// attempt budget runs out — never as a silent success or an ambiguous drop.
func TestResilientClientDegradedClassification(t *testing.T) {
	disk := storagefault.NewSimDisk()
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 1, FailSyncAt: 1})
	s := New(nil)
	j, err := OpenJournalFS(inj, "journal", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j)
	addr, _ := startTCP(t, s, wire.ServeConfig{})

	sm := &metrics.SyncMeter{}
	var sleeps atomic.Int64
	rc, err := wire.DialResilient(context.Background(), addr, wire.DialOpts{},
		wire.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   time.Microsecond,
			Sleep:       func(time.Duration) { sleeps.Add(1) },
		}, sm)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	n := &wire.Node{Kind: wire.NFull, Path: "a/f", Full: []byte("v1"), Ver: v(1, 1)}
	_, err = rc.Push(&wire.Batch{Nodes: []*wire.Node{n}})
	if err == nil {
		t.Fatal("push against degraded server reported success")
	}
	de, ok := wire.AsDegraded(err)
	if !ok {
		t.Fatalf("want typed ErrServerDegraded, got %v", err)
	}
	if de.Reason == "" {
		t.Fatal("degraded error carries no reason")
	}
	if got := wire.Classify(err); got != wire.ClassDegraded {
		t.Fatalf("Classify = %v, want ClassDegraded", got)
	}
	// Each retry backed off, and none of them tore down the connection.
	if sleeps.Load() != 2 {
		t.Fatalf("backoff sleeps = %d, want 2 (MaxAttempts-1)", sleeps.Load())
	}
	if got := sm.Reconnects(); got != 0 {
		t.Fatalf("reconnects = %d; degraded retries must reuse the connection", got)
	}

	// The server heals; the very same client retries and succeeds without
	// redialing.
	s.SetJournal(nil)
	s.ClearDegraded()
	r, err := rc.Push(&wire.Batch{Nodes: []*wire.Node{n}})
	if err != nil || r.Err != "" {
		t.Fatalf("push after recovery: %v %+v", err, r)
	}
	if got := sm.Reconnects(); got != 0 {
		t.Fatalf("recovery should not have required a reconnect, got %d", got)
	}
}

// An ENOSPC-exhausted journal drives the same degraded path as a failed
// fsync: the write budget runs out mid-append, Record fails, and the server
// refuses writes instead of acking data it cannot persist.
func TestDegradedOnNoSpace(t *testing.T) {
	disk := storagefault.NewSimDisk()
	inj := storagefault.NewInjector(disk, storagefault.Plan{Seed: 1, WriteBudget: 64})
	s := New(nil)
	j, err := OpenJournalFS(inj, "journal", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetJournal(j)

	var refusal string
	for i := uint64(1); i <= 64; i++ {
		n := &wire.Node{Kind: wire.NFull, Path: "a/f", Full: make([]byte, 128), Ver: v(1, i)}
		if i > 1 {
			n.Base = v(1, i-1)
		}
		r := s.Push(1, &wire.Batch{Seq: i, Nodes: []*wire.Node{n}})
		if r.Err != "" {
			refusal = r.Err
			break
		}
	}
	if refusal == "" {
		t.Fatal("server kept acking pushes past an exhausted 64-byte write budget")
	}
	if !wire.IsDegradedMsg(refusal) {
		t.Fatalf("ENOSPC refusal not marked degraded: %q", refusal)
	}
	if s.Degraded() == "" {
		t.Fatal("server not in degraded mode after ENOSPC")
	}
	if j.kv.Poisoned() == nil {
		t.Fatal("exhausted journal store should be poisoned")
	}
}

package server

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The applied-op log records the order in which content-bearing nodes were
// committed — the input of the upload-ordering experiment (Table IV) and of
// the server's durable snapshot. Until PR 6 it was a single slice behind one
// global mutex (appliedMu), which made it the last whole-server
// serialization point on the commit path: every transaction, on every shard,
// funneled through the same lock to append its ops.
//
// The striped log removes that funnel while keeping a total commit order:
//
//   - a global atomic counter assigns each committed op a dense sequence
//     number; the counter is bumped once per transaction (Add(len(ops))),
//     so a batch's ops stay contiguous;
//   - the ops are appended, with their sequence numbers, to ONE stripe
//     chosen by the batch's last sequence number — consecutive commits
//     land on different stripes, so concurrent transactions almost never
//     share an append lock;
//   - readers (AppliedLog, Save) merge: each stripe is copied under its own
//     lock, one at a time, and the union is sorted by sequence number. The
//     merge is O(n log n) but runs only on snapshot/observation paths,
//     never on the commit path.
//
// Because sequence numbers are assigned while the committing transaction
// still holds its batch's shard locks, two batches touching the same path
// get sequence numbers in their commit order; the merged view is therefore
// a linearization of the per-path commit orders, exactly as the single
// mutex provided. A 1-stripe log (the oracle and baseline configuration)
// degenerates to the old appliedMu behavior: one mutex, append order ==
// sequence order.
//
// Lock ordering: appliedStripe.mu is a leaf (level 6 in shard.go's table).
// append takes exactly one stripe lock; merge paths take one stripe lock at
// a time, never nested, with any earlier-level locks (Save's quiesce set)
// already held.

// appliedRec is one committed op with its global sequence number.
type appliedRec struct {
	seq uint64
	op  AppliedOp
}

// appliedStripe is one lock stripe of the applied-op log.
type appliedStripe struct {
	mu   sync.Mutex
	recs []appliedRec
}

// appliedLog is the striped applied-op log.
type appliedLog struct {
	seq     atomic.Uint64
	mask    uint32
	stripes []appliedStripe
}

// newAppliedLog returns an empty log with the given stripe count (rounded up
// to a power of two, minimum 1). One stripe reproduces the historical
// global-mutex behavior and is what the 1-shard oracle configuration and the
// loadsweep "global" baseline use.
func newAppliedLog(stripes int) *appliedLog {
	n := 1
	for n < stripes {
		n <<= 1
	}
	return &appliedLog{mask: uint32(n - 1), stripes: make([]appliedStripe, n)}
}

// append assigns the ops contiguous sequence numbers and appends them to one
// stripe. It returns the last sequence number assigned (0 if ops is empty).
// The caller is the committing transaction, still holding its batch's shard
// locks, which is what makes same-path sequence order equal commit order.
func (l *appliedLog) append(ops []AppliedOp) uint64 {
	if len(ops) == 0 {
		return 0
	}
	last := l.seq.Add(uint64(len(ops)))
	st := &l.stripes[uint32(last)&l.mask]
	st.mu.Lock()
	first := last - uint64(len(ops)) + 1
	for i, op := range ops {
		st.recs = append(st.recs, appliedRec{seq: first + uint64(i), op: op})
	}
	st.mu.Unlock()
	return last
}

// snapshot merges the stripes into the committed order: the union of all
// stripes sorted by sequence number. Stripe locks are taken one at a time.
func (l *appliedLog) snapshot() []AppliedOp {
	var recs []appliedRec
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.Lock()
		recs = append(recs, st.recs...)
		st.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]AppliedOp, len(recs))
	for i, r := range recs {
		out[i] = r.op
	}
	return out
}

// replace resets the log to exactly ops, in order (snapshot restore). The
// ops are re-sequenced 1..len and land in stripe 0; subsequent appends
// continue the sequence across all stripes.
func (l *appliedLog) replace(ops []AppliedOp) {
	for i := range l.stripes {
		st := &l.stripes[i]
		st.mu.Lock()
		st.recs = nil
		st.mu.Unlock()
	}
	st := &l.stripes[0]
	st.mu.Lock()
	for i, op := range ops {
		st.recs = append(st.recs, appliedRec{seq: uint64(i + 1), op: op})
	}
	st.mu.Unlock()
	l.seq.Store(uint64(len(ops)))
}

package server

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/wire"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	content := randBytes(60, 30000)
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NFull, Path: "doc", Full: content, Ver: v(cli, 1)}))
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NMkdir, Path: "dir"}))
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "chunked",
		Chunks: []wire.ChunkRef{{Hash: [16]byte{7}, Len: 5, Data: []byte("hello")}}, Ver: v(cli, 2)}))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := New(nil)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.FileContent("doc")
	if !ok || !bytes.Equal(got, content) {
		t.Fatal("file content lost across save/load")
	}
	if s2.Version("doc") != v(cli, 1) {
		t.Fatalf("version = %v", s2.Version("doc"))
	}
	// The chunk store survives: a reference-only upload resolves.
	cli2 := s2.Register()
	mustOK(t, push(t, s2, cli2, &wire.Node{Kind: wire.NCDC, Path: "copy",
		Chunks: []wire.ChunkRef{{Hash: [16]byte{7}, Len: 5}}, Base: s2.Version("copy"), Ver: v(cli2, 1)}))
	cp, _ := s2.FileContent("copy")
	if !bytes.Equal(cp, []byte("hello")) {
		t.Fatal("chunk store lost across save/load")
	}
	// A reconnecting client continues the version chain.
	mustOK(t, push(t, s2, cli2, &wire.Node{Kind: wire.NWrite, Path: "doc",
		Base: v(cli, 1), Ver: v(cli2, 2),
		Extents: []wire.Extent{{Off: 0, Data: []byte("updated")}}}))
}

func TestLoadRefusesAfterRegister(t *testing.T) {
	s := New(nil)
	var buf bytes.Buffer
	if err := New(nil).Save(&buf); err != nil {
		t.Fatal(err)
	}
	s.Register()
	if err := s.Load(&buf); err == nil {
		t.Fatal("Load succeeded after a client registered")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := New(nil)
	if err := s.Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.db")

	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NFull, Path: "f",
		Full: []byte("persisted"), Ver: v(cli, 1)}))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	s2 := New(nil)
	loaded, err := s2.LoadFile(path)
	if err != nil || !loaded {
		t.Fatalf("LoadFile = %v, %v", loaded, err)
	}
	got, _ := s2.FileContent("f")
	if !bytes.Equal(got, []byte("persisted")) {
		t.Fatal("content lost across file round trip")
	}

	// Missing file: fresh server, no error.
	s3 := New(nil)
	loaded, err = s3.LoadFile(filepath.Join(t.TempDir(), "absent.db"))
	if err != nil || loaded {
		t.Fatalf("LoadFile(absent) = %v, %v", loaded, err)
	}
}

func TestAppliedLogSurvivesReload(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCreate, Path: "a", Ver: v(cli, 1)}))
	var buf bytes.Buffer
	s.Save(&buf)
	s2 := New(nil)
	s2.Load(&buf)
	log := s2.AppliedLog()
	if len(log) != 1 || log[0].Path != "a" {
		t.Fatalf("AppliedLog = %+v", log)
	}
}

package server

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/version"
	"repro/internal/wire"
)

// The server's file state is striped across a fixed power-of-two number of
// shards keyed by fnv32a(path), so Push batches touching disjoint files
// apply concurrently instead of serializing on one global mutex. Every path
// derived from a batch — node paths, rename/link destinations, delta base
// paths, and the (deterministic) conflict-file names a losing batch could
// materialize — is resolved to its shard up front; the batch then takes its
// shard locks in ascending index order, which makes multi-shard atomic
// (backindex) batches deadlock-free while staying all-or-nothing.
//
// Lock ordering (outermost first; a later level must never be held while
// acquiring an earlier one):
//
//  1. clientState.pushMu — serializes one client's keyed pushes
//     (dedup-check → apply → reply-record must be atomic per client).
//     Whole-server operations (Save, DuplicateApplies) take many pushMus
//     in ascending client-ID order, never while holding clientMu.
//  2. fileShard.mu — in ascending shard index, the batch's precomputed
//     lock set. Read-only RPCs take a single shard's RLock.
//  3. Server.clientMu — registry lookup/insert/iteration only; no other
//     lock is ever acquired while it is held.
//  4. clientState.outMu — leaf; at most one held at a time.
//  5. Server.chunkInsertMu, then chunkStripe.mu (one at a time under it;
//     chunk() takes a single stripe lock with nothing above). Save/Load
//     hold the insert lock plus every stripe in ascending order, with
//     every earlier level already held.
//  6. appliedStripe.mu — leaf; at most one held at a time (append takes
//     exactly one stripe; snapshot/replace take one at a time, never
//     nested — applied.go).
//  7. Journal.mu — leaf; taken under the batch's shard locks on the push
//     path (WAL-before-apply) and with the full quiesce set held during
//     Save's journal-boundary capture.

// DefaultShards is the number of file-state stripes. Fixed and power-of-two
// so shardFor is a mask, large enough that 16 concurrent clients on random
// paths rarely collide (birthday bound ≈ 1 - e^(-16²/2·64) ≈ 0.86 for one
// collision among 64, but each collision only pairwise serializes).
const DefaultShards = 64

// fileShard is one stripe of the server's per-path state: contents,
// directories, versions, and the recent-revision history used for conflict
// materialization. Everything in it is guarded by mu.
type fileShard struct {
	mu      sync.RWMutex
	files   map[string][]byte
	dirs    map[string]bool
	vers    map[string]version.ID
	history map[string][]revision
}

func newFileShard() *fileShard {
	return &fileShard{
		files:   make(map[string][]byte),
		dirs:    make(map[string]bool),
		vers:    make(map[string]version.ID),
		history: make(map[string][]revision),
	}
}

// getVer mirrors version.Map.Get on the shard's slice of the version map.
func (sh *fileShard) getVer(path string) version.ID { return sh.vers[path] }

// setVer mirrors version.Map.Set (zero deletes).
func (sh *fileShard) setVer(path string, id version.ID) {
	if id.IsZero() {
		delete(sh.vers, path)
		return
	}
	sh.vers[path] = id
}

// shardFor maps a path to its stripe.
func (s *Server) shardFor(path string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(path))
	return h.Sum32() & s.shardMask
}

// shard returns the stripe owning path. The caller must hold the shard's
// lock (via a batchLocks set covering path, or a direct RLock).
func (s *Server) shard(path string) *fileShard {
	return s.shards[s.shardFor(path)]
}

// batchLocks is the sorted, deduplicated set of shard indices a batch may
// touch, locked in ascending order.
type batchLocks struct {
	s    *Server
	idxs []uint32
}

// lockSetFor computes every shard the batch can possibly touch: node paths,
// rename/link destinations, delta base paths, and the conflict-file names
// that first-write-wins reconciliation would create if the batch loses. The
// conflict names are deterministic (path, pusher, version counter), so the
// full set is known before any lock is taken.
func (s *Server) lockSetFor(from uint32, b *wire.Batch) *batchLocks {
	seen := make(map[uint32]struct{}, len(b.Nodes)*2)
	add := func(path string) {
		if path == "" {
			return
		}
		seen[s.shardFor(path)] = struct{}{}
	}
	for _, n := range b.Nodes {
		add(n.Path)
		add(n.Dst)
		add(n.BasePath)
		if conflictEligible(n.Kind) {
			add(conflictName(n, from))
		}
	}
	bl := &batchLocks{s: s, idxs: make([]uint32, 0, len(seen))}
	for idx := range seen {
		bl.idxs = append(bl.idxs, idx)
	}
	sort.Slice(bl.idxs, func(i, j int) bool { return bl.idxs[i] < bl.idxs[j] })
	return bl
}

// lock acquires the set's shard locks in ascending index order (the
// deadlock-freedom rule for atomic batches spanning shards).
//
//deltavet:lockorder-helper
func (bl *batchLocks) lock() {
	for _, idx := range bl.idxs {
		bl.s.shards[idx].mu.Lock()
	}
}

// unlock releases in reverse order.
//
//deltavet:lockorder-helper
func (bl *batchLocks) unlock() {
	for i := len(bl.idxs) - 1; i >= 0; i-- {
		bl.s.shards[bl.idxs[i]].mu.Unlock()
	}
}

// OutboxDepthLimit bounds how many forwarded batches the server retains per
// client. A sharing client that never Polls (dead, wedged, or partitioned)
// otherwise grows server memory without limit; past the bound the oldest
// batches are dropped — safe because forwarding is an optimization: a client
// that missed a forward re-synchronizes the affected file via Head/Fetch on
// its next conflict or resync pass. It is a variable only so tests can
// exercise the bound cheaply.
var OutboxDepthLimit = 1024

// clientState is everything the server keeps per client: the forwarding
// outbox (outMu), and the idempotency state — reply cache plus the
// duplicate-apply audit trail — which only the client's own serialized
// pushes mutate (pushMu).
type clientState struct {
	// pushMu serializes keyed pushes from this client so the
	// dedup-check → apply → record sequence is atomic per (client, seq).
	// Real clients submit in order over one connection, so this is
	// uncontended in the fast path.
	pushMu      sync.Mutex
	dedup       *replyCache
	appliedSeqs map[uint64]int

	// registered reports whether the ID was minted by Register or bound by
	// Attach (and therefore receives forwarded batches); a bare pusher that
	// skipped registration gets idempotency state but no outbox.
	// Guarded by Server.clientMu.
	registered bool

	// group points at the client's sharing group (nil for a bare pusher
	// until its first push resolves the default group). Atomic so the push
	// hot path reads it without the registry lock.
	group atomic.Pointer[groupInfo]

	// outbox holds forwarded batches as shared, immutable EncodedBatch
	// values: every sharing peer's outbox (and the journal) points at the
	// same value, so fan-out to N peers is N pointer pushes — no per-peer
	// payload copy, and at most one payload encode batch-wide.
	outMu      sync.Mutex
	outbox     []*wire.EncodedBatch
	outDrops   int64 // forwarded batches evicted past OutboxDepthLimit
	outPeak    int   // high-water outbox depth
	outPending int   // current depth (mirrors len(outbox) for stats)
}

// enqueue appends a forwarded batch, evicting the oldest past the bound.
// It reports the resulting depth and how many batches were dropped.
func (cs *clientState) enqueue(b *wire.EncodedBatch) (depth int, dropped int64) {
	cs.outMu.Lock()
	defer cs.outMu.Unlock()
	cs.outbox = append(cs.outbox, b)
	if limit := OutboxDepthLimit; limit > 0 && len(cs.outbox) > limit {
		over := len(cs.outbox) - limit
		// Copy the tail forward so the backing array does not pin the
		// dropped batches alive.
		cs.outbox = append(cs.outbox[:0], cs.outbox[over:]...)
		cs.outDrops += int64(over)
		dropped = int64(over)
	}
	cs.outPending = len(cs.outbox)
	if cs.outPending > cs.outPeak {
		cs.outPeak = cs.outPending
	}
	return cs.outPending, dropped
}

// drain swaps the outbox out under the client's own lock — O(1) regardless
// of depth, so a polling client never blocks pushers for long.
func (cs *clientState) drain() []*wire.EncodedBatch {
	cs.outMu.Lock()
	out := cs.outbox
	cs.outbox = nil
	cs.outPending = 0
	cs.outMu.Unlock()
	return out
}

// lookupClient returns the client's state, or nil if the ID is unknown.
func (s *Server) lookupClient(id uint32) *clientState {
	s.clientMu.RLock()
	cs := s.clients[id]
	s.clientMu.RUnlock()
	return cs
}

// ensureClient returns the client's state, creating unregistered state on
// first use (a bare pusher gets idempotency tracking without an outbox).
func (s *Server) ensureClient(id uint32) *clientState {
	if cs := s.lookupClient(id); cs != nil {
		return cs
	}
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	cs := s.clients[id]
	if cs == nil {
		cs = newClientState()
		s.clients[id] = cs
	}
	return cs
}

func newClientState() *clientState {
	return &clientState{
		dedup:       &replyCache{replies: make(map[uint64]*wire.PushReply)},
		appliedSeqs: make(map[uint64]int),
	}
}

// clientSnapshot returns the registry's (id, state) pairs in ascending ID
// order, taken under the registry lock but used outside it (per the lock
// ordering rule, pushMu/outMu must not be acquired while clientMu is held).
func (s *Server) clientSnapshot() []clientRef {
	s.clientMu.RLock()
	out := make([]clientRef, 0, len(s.clients))
	for id, cs := range s.clients {
		out = append(out, clientRef{id: id, cs: cs})
	}
	s.clientMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

type clientRef struct {
	id uint32
	cs *clientState
}

// lockAllShards takes every shard lock in ascending order (whole-server
// operations: Save, Files, Load).
//
//deltavet:lockorder-helper
func (s *Server) lockAllShards() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

//deltavet:lockorder-helper
func (s *Server) unlockAllShards() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// lockOne write-locks a single shard outside any batch — the entry point
// for seeding and single-path maintenance. A lone acquisition is trivially
// consistent with the ascending-order rule.
//
//deltavet:lockorder-helper
func (sh *fileShard) lockOne() { sh.mu.Lock() }

// unlockOne releases a lockOne acquisition.
//
//deltavet:lockorder-helper
func (sh *fileShard) unlockOne() { sh.mu.Unlock() }

package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// Oracle property test: a seeded multi-client op script applied concurrently
// to the sharded server must end in exactly the state the 1-shard
// (global-lock) server reaches replaying the same script serially. Each
// client owns a disjoint path universe and submits its batches in program
// order, so the final state is schedule-independent and the comparison is
// exact: files, contents, versions, directories — including the conflict
// copies that deliberately stale-based batches materialize.
// ---------------------------------------------------------------------------

// opgen generates one client's deterministic batch script. It tracks the
// server-side version each path will have at each point of the client's
// program order (valid because no other client touches these paths).
type opgen struct {
	r      *rand.Rand
	id     uint32
	paths  []string
	ctr    *version.Counter
	vers   map[string]version.ID
	exists map[string]bool
}

func newOpgen(seed int64, id uint32, nPaths int) *opgen {
	g := &opgen{
		r:      rand.New(rand.NewSource(seed)),
		id:     id,
		ctr:    version.NewCounter(id),
		vers:   make(map[string]version.ID),
		exists: make(map[string]bool),
	}
	for j := 0; j < nPaths; j++ {
		g.paths = append(g.paths, fmt.Sprintf("c%d/f%d", id, j))
	}
	return g
}

func (g *opgen) pick() string { return g.paths[g.r.Intn(len(g.paths))] }

func (g *opgen) content() []byte {
	p := make([]byte, 1+g.r.Intn(200))
	g.r.Read(p)
	return p
}

// fullNode builds a valid whole-file write and advances the model.
func (g *opgen) fullNode(p string) *wire.Node {
	n := &wire.Node{Kind: wire.NFull, Path: p, Base: g.vers[p], Ver: g.ctr.Next(), Full: g.content()}
	g.vers[p] = n.Ver
	g.exists[p] = true
	return n
}

// existingPath returns a path with a non-zero version, or "" if none yet.
func (g *opgen) existingPath() string {
	var have []string
	for _, p := range g.paths {
		if g.exists[p] {
			have = append(have, p)
		}
	}
	if len(have) == 0 {
		return ""
	}
	return have[g.r.Intn(len(have))]
}

// next generates the client's next batch.
func (g *opgen) next(seq uint64) *wire.Batch {
	b := &wire.Batch{Client: g.id, Seq: seq}
	switch roll := g.r.Intn(10); {
	case roll < 3: // single whole-file write
		b.Nodes = []*wire.Node{g.fullNode(g.pick())}

	case roll < 5: // atomic multi-file batch spanning shards
		b.Atomic = true
		perm := g.r.Perm(len(g.paths))
		k := 2 + g.r.Intn(3)
		for _, pi := range perm[:k] {
			b.Nodes = append(b.Nodes, g.fullNode(g.paths[pi]))
		}

	case roll < 6: // extent write (creates the file if absent)
		p := g.pick()
		n := &wire.Node{Kind: wire.NWrite, Path: p, Base: g.vers[p], Ver: g.ctr.Next()}
		for e := 0; e <= g.r.Intn(3); e++ {
			d := make([]byte, 1+g.r.Intn(50))
			g.r.Read(d)
			n.Extents = append(n.Extents, wire.Extent{Off: int64(g.r.Intn(100)), Data: d})
		}
		g.vers[p] = n.Ver
		g.exists[p] = true
		b.Nodes = []*wire.Node{n}

	case roll < 7: // deliberate stale base: conflicts, state unchanged
		p := g.existingPath()
		if p == "" {
			b.Nodes = []*wire.Node{g.fullNode(g.pick())}
			break
		}
		stale := version.ID{Client: g.id, Count: g.vers[p].Count + 50}
		b.Nodes = []*wire.Node{{
			Kind: wire.NFull, Path: p, Base: stale, Ver: g.ctr.Next(), Full: g.content(),
		}}

	case roll < 8: // atomic group with one stale member: all-or-nothing conflict
		if len(g.paths) < 2 {
			b.Nodes = []*wire.Node{g.fullNode(g.pick())}
			break
		}
		perm := g.r.Perm(len(g.paths))
		p1, p2 := g.paths[perm[0]], g.paths[perm[1]]
		b.Atomic = true
		b.Nodes = []*wire.Node{
			{Kind: wire.NFull, Path: p1, Base: g.vers[p1], Ver: g.ctr.Next(), Full: g.content()},
			{Kind: wire.NFull, Path: p2,
				Base: version.ID{Client: g.id, Count: g.vers[p2].Count + 99},
				Ver:  g.ctr.Next(), Full: g.content()},
		}

	case roll < 9: // truncate or unlink an existing file
		p := g.existingPath()
		if p == "" {
			b.Nodes = []*wire.Node{g.fullNode(g.pick())}
			break
		}
		if g.r.Intn(2) == 0 {
			n := &wire.Node{Kind: wire.NTruncate, Path: p, Size: int64(g.r.Intn(100)),
				Base: g.vers[p], Ver: g.ctr.Next()}
			g.vers[p] = n.Ver
			b.Nodes = []*wire.Node{n}
		} else {
			b.Nodes = []*wire.Node{{Kind: wire.NUnlink, Path: p, Base: g.vers[p]}}
			delete(g.vers, p)
			g.exists[p] = false
		}

	default: // mkdir
		b.Nodes = []*wire.Node{{Kind: wire.NMkdir,
			Path: fmt.Sprintf("c%d/d%d", g.id, g.r.Intn(4))}}
	}
	return b
}

// snapshotOf captures a server's comparable state.
type flatState struct {
	files map[string][]byte
	vers  map[string]version.ID
	dirs  []string
}

func snapshotOf(s *Server) flatState {
	st := flatState{files: make(map[string][]byte), vers: make(map[string]version.ID)}
	for _, p := range s.Files() {
		c, _ := s.FileContent(p)
		st.files[p] = c
		st.vers[p] = s.Version(p)
	}
	st.dirs = s.Dirs()
	sort.Strings(st.dirs)
	return st
}

func diffStates(t *testing.T, sharded, oracle flatState) {
	t.Helper()
	if len(sharded.files) != len(oracle.files) {
		t.Errorf("file count: sharded %d, oracle %d", len(sharded.files), len(oracle.files))
	}
	for p, oc := range oracle.files {
		sc, ok := sharded.files[p]
		if !ok {
			t.Errorf("path %q: in oracle, missing from sharded server", p)
			continue
		}
		if !bytes.Equal(sc, oc) {
			t.Errorf("path %q: content diverged (%d vs %d bytes)", p, len(sc), len(oc))
		}
		if sharded.vers[p] != oracle.vers[p] {
			t.Errorf("path %q: version %v vs %v", p, sharded.vers[p], oracle.vers[p])
		}
	}
	for p := range sharded.files {
		if _, ok := oracle.files[p]; !ok {
			t.Errorf("path %q: in sharded server, missing from oracle", p)
		}
	}
	if fmt.Sprint(sharded.dirs) != fmt.Sprint(oracle.dirs) {
		t.Errorf("dirs diverged: %v vs %v", sharded.dirs, oracle.dirs)
	}
}

func TestShardedMatchesGlobalLockOracle(t *testing.T) {
	const (
		nSeeds   = 24
		nClients = 4
		nBatches = 25
		nPaths   = 6
	)
	for seed := int64(1); seed <= nSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sharded := New(nil)
			oracle := NewWithShards(nil, 1)
			if oracle.ShardCount() != 1 {
				t.Fatalf("oracle has %d shards, want 1", oracle.ShardCount())
			}

			// Register the same client IDs on both servers, then generate
			// each client's script against its own path universe.
			scripts := make([][]*wire.Batch, nClients)
			ids := make([]uint32, nClients)
			for i := 0; i < nClients; i++ {
				id := sharded.Register()
				if oid := oracle.Register(); oid != id {
					t.Fatalf("client ID mismatch: %d vs %d", id, oid)
				}
				ids[i] = id
				g := newOpgen(seed*131+int64(i), id, nPaths)
				for k := 0; k < nBatches; k++ {
					scripts[i] = append(scripts[i], g.next(uint64(k+1)))
				}
			}

			// Concurrent run on the sharded server: one goroutine per
			// client, batches in program order, reads sprinkled in.
			var wg sync.WaitGroup
			for i := 0; i < nClients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k, b := range scripts[i] {
						sharded.Push(ids[i], b)
						if k%3 == 0 {
							sharded.Head(b.Nodes[0].Path)
							sharded.Poll(ids[i])
						}
						if k%7 == 0 {
							sharded.Fetch(b.Nodes[0].Path)
						}
					}
				}(i)
			}
			wg.Wait()

			// Serial round-robin replay on the 1-shard oracle (any order
			// respecting per-client program order must give this state).
			for k := 0; k < nBatches; k++ {
				for i := 0; i < nClients; i++ {
					oracle.Push(ids[i], scripts[i][k])
				}
			}

			diffStates(t, snapshotOf(sharded), snapshotOf(oracle))
			if d := sharded.DuplicateApplies(); d != 0 {
				t.Errorf("sharded server double-applied %d keyed batches", d)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Randomized concurrency stress: many goroutines hammer one sharded server
// with pushes on *shared* paths (real cross-client races), atomic batches
// spanning shards, polls, reads, snapshots, and concurrent replays of the
// same keyed batch. Run under -race; the only hard invariants are "no keyed
// batch applies twice" and "the server stays responsive and self-consistent".
// ---------------------------------------------------------------------------

func TestConcurrentStressRandomOps(t *testing.T) {
	s := New(nil)
	sharedPaths := make([]string, 8)
	for i := range sharedPaths {
		sharedPaths[i] = fmt.Sprintf("shared/f%d", i)
	}

	const workers = 6
	const iters = 60
	ids := make([]uint32, workers)
	for i := range ids {
		ids[i] = s.Register()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 977))
			ctr := version.NewCounter(ids[w])
			for i := 0; i < iters; i++ {
				switch r.Intn(8) {
				case 0, 1: // racy write: base read and push race with others
					p := sharedPaths[r.Intn(len(sharedPaths))]
					base := s.Version(p)
					s.Push(ids[w], &wire.Batch{Client: ids[w], Nodes: []*wire.Node{{
						Kind: wire.NFull, Path: p, Base: base, Ver: ctr.Next(),
						Full: []byte(fmt.Sprintf("w%d-i%d", w, i)),
					}}})
				case 2: // atomic batch spanning several shards
					b := &wire.Batch{Client: ids[w], Atomic: true}
					for _, pi := range r.Perm(len(sharedPaths))[:3] {
						p := sharedPaths[pi]
						b.Nodes = append(b.Nodes, &wire.Node{
							Kind: wire.NFull, Path: p, Base: s.Version(p),
							Ver: ctr.Next(), Full: []byte("atomic"),
						})
					}
					s.Push(ids[w], b)
				case 3:
					s.Poll(ids[w])
				case 4:
					s.Fetch(sharedPaths[r.Intn(len(sharedPaths))])
					s.Head(sharedPaths[r.Intn(len(sharedPaths))])
				case 5:
					s.Files()
					s.OutboxStats()
				case 6: // snapshot concurrently with pushes
					if err := s.Save(io.Discard); err != nil {
						t.Errorf("Save: %v", err)
					}
				case 7: // private-path write (uncontended shard traffic)
					p := fmt.Sprintf("w%d/own", w)
					s.Push(ids[w], &wire.Batch{Client: ids[w], Nodes: []*wire.Node{{
						Kind: wire.NFull, Path: p, Base: s.Version(p), Ver: ctr.Next(),
						Full: []byte("own"),
					}}})
				}
			}
		}(w)
	}

	// Two extra goroutines share one client ID and push the *same* keyed
	// batches concurrently — every Seq must apply exactly once.
	replayID := s.Register()
	replayBatches := make([]*wire.Batch, 30)
	for k := range replayBatches {
		base := version.ID{}
		if k > 0 {
			base = version.ID{Client: replayID, Count: uint64(k)}
		}
		replayBatches[k] = &wire.Batch{Client: replayID, Seq: uint64(k + 1), Nodes: []*wire.Node{{
			Kind: wire.NFull, Path: "replay/f", Full: []byte(fmt.Sprintf("v%d", k)),
			Base: base,
			Ver:  version.ID{Client: replayID, Count: uint64(k + 1)},
		}}}
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, b := range replayBatches {
				s.Push(replayID, b)
			}
		}()
	}
	wg.Wait()

	if d := s.DuplicateApplies(); d != 0 {
		t.Fatalf("%d keyed batches applied more than once", d)
	}
	// Every listed file must be readable and every shared path must hold
	// one of the contents some client pushed (no torn or phantom state).
	for _, p := range s.Files() {
		if _, ok := s.FileContent(p); !ok {
			t.Fatalf("Files() listed %q but FileContent says it is gone", p)
		}
	}
	if c, ok := s.FileContent("replay/f"); !ok || string(c) != "v29" {
		t.Fatalf("replay/f = %q, %v; want final keyed write v29", c, ok)
	}
	// The server is still fully operational after the storm.
	last := s.Register()
	r := s.Push(last, &wire.Batch{Client: last, Nodes: []*wire.Node{{
		Kind: wire.NFull, Path: "post/storm", Ver: version.ID{Client: last, Count: 1},
		Full: []byte("ok"),
	}}})
	if r.Statuses[0] != wire.StatusOK {
		t.Fatalf("post-storm push status %d (%s)", r.Statuses[0], r.Err)
	}
}

// ---------------------------------------------------------------------------
// Outbox bounding (satellite 1): past OutboxDepthLimit the oldest forwarded
// batches are evicted, the drops and peak surface in OutboxStats and on the
// wired SyncMeter, and a poll drains exactly the retained newest batches.
// ---------------------------------------------------------------------------

func TestOutboxBoundedEviction(t *testing.T) {
	old := OutboxDepthLimit
	OutboxDepthLimit = 8
	defer func() { OutboxDepthLimit = old }()

	s := New(nil)
	sm := &metrics.SyncMeter{}
	s.SetSyncMeter(sm)
	pusher := s.Register()
	idle := s.Register() // never polls until the end

	for i := 1; i <= 20; i++ {
		r := s.Push(pusher, &wire.Batch{Client: pusher, Nodes: []*wire.Node{{
			Kind: wire.NFull, Path: fmt.Sprintf("f%d", i),
			Ver:  version.ID{Client: pusher, Count: uint64(i)},
			Full: []byte("x"),
		}}})
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: status %d", i, r.Statuses[0])
		}
	}

	st := s.OutboxStats()
	if st.Depth != 8 || st.Peak != 8 || st.Drops != 12 {
		t.Fatalf("OutboxStats = %+v, want Depth 8, Peak 8, Drops 12", st)
	}
	if sm.OutboxDrops() != 12 {
		t.Fatalf("SyncMeter.OutboxDrops = %d, want 12", sm.OutboxDrops())
	}
	if sm.OutboxPeak() != 8 {
		t.Fatalf("SyncMeter.OutboxPeak = %d, want 8", sm.OutboxPeak())
	}
	stats := sm.Snapshot()
	if stats.OutboxDrops != 12 || stats.OutboxPeak != 8 {
		t.Fatalf("SyncStats = %+v, want drops 12 peak 8", stats)
	}

	got := s.Poll(idle)
	if len(got) != 8 {
		t.Fatalf("Poll drained %d batches, want the 8 newest", len(got))
	}
	for i, b := range got {
		want := fmt.Sprintf("f%d", 13+i)
		if b.Nodes[0].Path != want {
			t.Fatalf("retained batch %d is %q, want %q (oldest must be evicted)",
				i, b.Nodes[0].Path, want)
		}
	}
	if st := s.OutboxStats(); st.Depth != 0 {
		t.Fatalf("post-poll Depth = %d, want 0", st.Depth)
	}
}

// Outbox backpressure (ROADMAP follow-on): a pusher whose forwards are
// filling a slow peer's bounded outbox is told so on the reply instead of
// the forwards being dropped silently, and the signals are counted on the
// SyncMeter. Draining the outbox clears the signal.
func TestOutboxBackpressureSignaled(t *testing.T) {
	old := OutboxDepthLimit
	OutboxDepthLimit = 4
	defer func() { OutboxDepthLimit = old }()

	s := New(nil)
	sm := &metrics.SyncMeter{}
	s.SetSyncMeter(sm)
	pusher := s.Register()
	idle := s.Register() // slow poller

	pushOne := func(i int) *wire.PushReply {
		t.Helper()
		r := s.Push(pusher, &wire.Batch{Client: pusher, Nodes: []*wire.Node{{
			Kind: wire.NFull, Path: fmt.Sprintf("f%d", i),
			Ver:  version.ID{Client: pusher, Count: uint64(i)},
			Full: []byte("x"),
		}}})
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: status %d (%s)", i, r.Statuses[0], r.Err)
		}
		return r
	}

	// Below the bound: no backpressure.
	for i := 1; i <= 3; i++ {
		if pushOne(i).Throttled {
			t.Fatalf("push %d throttled at depth %d (limit 4)", i, i)
		}
	}
	// At the bound (one forward away from evicting) and past it: every
	// reply carries the signal.
	for i := 4; i <= 10; i++ {
		if !pushOne(i).Throttled {
			t.Fatalf("push %d not throttled with the outbox at its bound", i)
		}
	}
	if got := sm.OutboxThrottles(); got != 7 {
		t.Fatalf("OutboxThrottles = %d, want 7", got)
	}
	if stats := sm.Snapshot(); stats.OutboxThrottles != 7 {
		t.Fatalf("SyncStats.OutboxThrottles = %d, want 7", stats.OutboxThrottles)
	}

	// Once the slow peer catches up, pushes flow without the signal.
	if got := s.Poll(idle); len(got) != 4 {
		t.Fatalf("Poll drained %d batches, want 4", len(got))
	}
	if pushOne(11).Throttled {
		t.Fatal("push throttled after the peer drained its outbox")
	}
}

// NewWithShards must round up to a power of two and never go below 1.
func TestNewWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	} {
		if got := NewWithShards(nil, tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewWithShards(%d) → %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

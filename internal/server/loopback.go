package server

import (
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/wire"
)

// Loopback is an in-process wire.Endpoint bound directly to a Server. It is
// what the benchmark harness uses: no sockets, but identical message-size
// accounting to the network transport (both charge wire.WireSize), so
// traffic numbers are byte-for-byte comparable while CPU measurements stay
// free of kernel noise.
type Loopback struct {
	s       *Server
	id      uint32
	meter   *metrics.CPUMeter     // client-side CPU
	traffic *metrics.TrafficMeter // client-side traffic
}

// requestSize approximates the framing of a small request message.
const requestSize = 64

// NewLoopback registers a new client on s and returns its endpoint. meter
// and traffic account the client side (either may be nil).
func NewLoopback(s *Server, meter *metrics.CPUMeter, traffic *metrics.TrafficMeter) *Loopback {
	return &Loopback{s: s, id: s.Register(), meter: meter, traffic: traffic}
}

// Register implements wire.Endpoint.
func (l *Loopback) Register() (uint32, error) { return l.id, nil }

// Push implements wire.Endpoint.
func (l *Loopback) Push(b *wire.Batch) (*wire.PushReply, error) {
	b.Client = l.id
	size := b.WireSize()
	l.meter.RPC(1)
	l.meter.Net(size)
	l.traffic.Upload(size)
	r := l.s.Push(l.id, b)
	l.meter.Net(r.WireSize())
	l.traffic.Download(r.WireSize())
	return r, nil
}

// Fetch implements wire.Endpoint.
func (l *Loopback) Fetch(path string) (*wire.FetchReply, error) {
	l.meter.RPC(1)
	l.traffic.Upload(requestSize + int64(len(path)))
	r := l.s.Fetch(path)
	l.meter.Net(r.WireSize())
	l.traffic.Download(r.WireSize())
	return r, nil
}

// Head implements wire.Endpoint.
func (l *Loopback) Head(path string) (version.ID, bool, error) {
	l.meter.RPC(1)
	l.traffic.Upload(requestSize + int64(len(path)))
	v, ok := l.s.Head(path)
	l.traffic.Download(32)
	return v, ok, nil
}

// FetchRange implements wire.Endpoint.
func (l *Loopback) FetchRange(path string, off, n int64) ([]byte, error) {
	l.meter.RPC(1)
	l.traffic.Upload(requestSize + int64(len(path)))
	data, err := l.s.FetchRange(path, off, n)
	if err != nil {
		return nil, err
	}
	l.meter.Net(int64(len(data)) + 32)
	l.traffic.Download(int64(len(data)) + 32)
	return data, nil
}

// Poll implements wire.Endpoint.
func (l *Loopback) Poll() ([]*wire.Batch, error) {
	l.meter.RPC(1)
	l.traffic.Upload(requestSize)
	batches := l.s.Poll(l.id)
	var size int64 = 16
	for _, b := range batches {
		size += b.WireSize()
	}
	l.meter.Net(size)
	l.traffic.Download(size)
	return batches, nil
}

// Close implements wire.Endpoint.
func (l *Loopback) Close() error { return nil }

var _ wire.Endpoint = (*Loopback)(nil)

package server

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/kvstore"
	"repro/internal/storagefault"
	"repro/internal/wire"
)

// Journal is the server's durable push log: every batch is recorded —
// gob-encoded, in commit order — before it is applied, so a crash between
// periodic snapshots loses no acknowledged push. Recovery is
// snapshot-then-replay: LoadFile restores the last snapshot, Replay re-pushes
// every journaled batch after the snapshot boundary, and the restored
// idempotency state (snapshot v2 dedup) absorbs any batch the snapshot had
// already applied — the replay path reuses Push, so replays are deduped,
// version-checked, and forwarded exactly like live traffic.
//
// Durability rides on kvstore's group-commit WAL: with a commit window, ten
// thousand clients' pushes share one fsync per window instead of paying one
// each; with no window, Record syncs per batch and concurrent pushers
// coalesce onto the leader's fsync.
//
// Lock ordering: Journal.mu is a leaf (level 7 in shard.go's table), taken
// under the batch's shard locks on the push path. Entry keys are
// fixed-width hex under prefix "b/" so kvstore.Range's sorted-key iteration
// is commit order.
type Journal struct {
	mu      sync.Mutex
	kv      *kvstore.Store
	next    uint64 // next entry sequence to assign (under mu)
	pending uint64 // captured-but-uncommitted snapshot boundary (under mu)
	sync    bool   // fsync per Record (no commit window)
}

// journalEntry is one recorded push in the legacy gob entry format.
// Journals written before the binary codec hold these; Replay still decodes
// them, so a server upgraded across the codec change recovers its old WAL.
type journalEntry struct {
	From  uint32
	Batch *wire.Batch
}

// binaryEntryMagic prefixes entries written in the binary format:
// [magic 4][from u32 LE][batch payload]. The first byte is 0x00, which a
// gob stream can never start with (gob frames messages with a uvarint byte
// count ≥ 1), so the two formats are unambiguous side by side in one store.
var binaryEntryMagic = [4]byte{0x00, 'D', 'C', 1}

// snapKey holds the highest entry sequence covered by the latest server
// snapshot; entries at or below it are dead weight, dropped by
// TruncateSnapshotted.
const snapKey = "snap"

func entryKey(seq uint64) []byte {
	return []byte(fmt.Sprintf("b/%016x", seq))
}

// OpenJournal opens (or creates) a push journal in dir. A positive window
// enables group durability: Record returns once the entry is buffered and
// the background committer fsyncs at most once per window (durability lags
// a crash by at most one window). window <= 0 means fsync-per-record, with
// concurrent records coalescing onto one fsync.
func OpenJournal(dir string, window time.Duration) (*Journal, error) {
	return OpenJournalFS(nil, dir, window)
}

// OpenJournalFS is OpenJournal with an explicit storage layer: all journal
// IO (WAL appends, fsyncs, compaction renames) goes through fsys, so fault
// injectors and simulated disks can drive the journal through fsync failure,
// torn writes, and crash-point exploration. nil fsys means the real
// filesystem.
func OpenJournalFS(fsys storagefault.FS, dir string, window time.Duration) (*Journal, error) {
	kv, err := kvstore.OpenWith(dir, kvstore.Options{CommitWindow: window, FS: fsys})
	if err != nil {
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	j := &Journal{kv: kv, next: 1, sync: window <= 0}
	// Resume the sequence after the highest surviving entry.
	err = kv.Range([]byte("b/"), func(key, _ []byte) bool {
		var seq uint64
		if _, err := fmt.Sscanf(string(key), "b/%016x", &seq); err == nil && seq >= j.next {
			j.next = seq + 1
		}
		return true
	})
	if err != nil {
		//deltavet:allow errsync open failed; the Range error being returned already dooms this store
		kv.Close()
		return nil, fmt.Errorf("server: open journal: %w", err)
	}
	return j, nil
}

// SetJournal wires a push journal into the server (nil detaches). Wire it
// before serving: batches pushed while detached are not journaled.
func (s *Server) SetJournal(j *Journal) { s.journal.Store(j) }

// Record appends one push to the journal. Push calls it while holding the
// batch's shard locks and before applying (WAL discipline): if the entry
// cannot be made durable the batch is rejected, so an acknowledged push is
// always either snapshotted or replayable.
//
// The entry body is the batch's binary wire payload, shared with the
// forwarding outboxes and (for binary-transport pushes) the receive frame
// itself — the journal append performs zero additional payload encodes.
func (j *Journal) Record(from uint32, eb *wire.EncodedBatch) error {
	payload := eb.Bytes()
	val := make([]byte, 0, len(binaryEntryMagic)+4+len(payload))
	val = append(val, binaryEntryMagic[:]...)
	val = binary.LittleEndian.AppendUint32(val, from)
	val = append(val, payload...)
	j.mu.Lock()
	seq := j.next
	j.next++
	// The kvstore put lands in a buffered, file-backed WAL; doing it under
	// the shard locks is the WAL-before-apply contract (replay order must be
	// commit order), and the group-commit window keeps the fsync itself off
	// this path.
	//deltavet:allow blockunderlock WAL-before-apply requires journaling under the batch's shard locks; fsync is group-committed off-path
	err := j.kv.Put(entryKey(seq), val)
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if j.sync {
		// Per-record durability: concurrent pushers group-commit onto one
		// leader fsync inside kvstore.Sync.
		//deltavet:allow blockunderlock per-record durability mode fsyncs before ack by design; concurrent pushers coalesce
		return j.kv.Sync()
	}
	return nil
}

// captureSnapshot notes the boundary candidate — the highest entry sequence
// the in-flight snapshot covers. Save calls it while the server is quiesced
// (all push and shard locks held), so no entry can be racing in. The value
// is only CAPTURED here, not written: recording it durably before the
// snapshot file itself is atomically in place would let a failed snapshot
// fsync truncate entries whose covering snapshot never materialized — the
// crash-point harness's first catch.
func (j *Journal) captureSnapshot() {
	j.mu.Lock()
	j.pending = j.next - 1
	j.mu.Unlock()
}

// commitSnapshot records the captured boundary. SaveFile calls it only
// after the snapshot's rename and directory fsync have succeeded, so the
// boundary can never outrun the snapshot that justifies it.
func (j *Journal) commitSnapshot() {
	j.mu.Lock()
	last := j.pending
	j.mu.Unlock()
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], last)
	// Best-effort: a failed boundary write only means replay re-pushes
	// batches the snapshot already holds, which dedup absorbs.
	//deltavet:allow errsync snapshot boundary is advisory; replay of covered entries is deduped
	j.kv.Put([]byte(snapKey), v[:])
}

// snapshotted returns the recorded snapshot boundary (0 if none).
func (j *Journal) snapshotted() uint64 {
	v, ok, err := j.kv.Get([]byte(snapKey))
	if err != nil || !ok || len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// Replay re-pushes every journaled batch after the snapshot boundary, in
// commit order, returning how many were replayed. Call it after LoadFile and
// before serving (in particular, before SetJournal re-wires the journal —
// replayed pushes must not re-record themselves). Replays go through
// PushEncoded, so batches the snapshot already applied are absorbed by the
// restored dedup state rather than re-applied, and each entry's payload is
// reused as decoded instead of re-encoded. Entries in the legacy gob format
// are decoded transparently alongside binary ones.
func (j *Journal) Replay(s *Server) (int, error) {
	boundary := j.snapshotted()
	type pending struct {
		seq  uint64
		from uint32
		eb   *wire.EncodedBatch
	}
	var entries []pending
	var decodeErr error
	err := j.kv.Range([]byte("b/"), func(key, val []byte) bool {
		var seq uint64
		if _, err := fmt.Sscanf(string(key), "b/%016x", &seq); err != nil {
			return true
		}
		if seq <= boundary {
			return true
		}
		if len(val) >= len(binaryEntryMagic)+4 && bytes.HasPrefix(val, binaryEntryMagic[:]) {
			from := binary.LittleEndian.Uint32(val[len(binaryEntryMagic):])
			// Copy the payload out of the store's buffer, then alias the
			// copy: the EncodedBatch owns its bytes and no re-encode is
			// needed if this replayed push is journaled or forwarded again.
			payload := append([]byte(nil), val[len(binaryEntryMagic)+4:]...)
			b, err := wire.DecodeBatchPayload(payload, true)
			if err != nil {
				decodeErr = fmt.Errorf("journal entry %d: %w", seq, err)
				return false
			}
			entries = append(entries, pending{seq: seq, from: from, eb: wire.NewEncodedBatchRaw(b, payload)})
			return true
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(val)).Decode(&e); err != nil {
			decodeErr = fmt.Errorf("journal entry %d: %w", seq, err)
			return false
		}
		if e.Batch != nil {
			entries = append(entries, pending{seq: seq, from: e.From, eb: wire.NewEncodedBatch(e.Batch)})
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if decodeErr != nil {
		return 0, decodeErr
	}
	for _, p := range entries {
		if reply := s.PushEncoded(p.from, p.eb); reply.Err != "" {
			return 0, fmt.Errorf("journal replay entry %d: %s", p.seq, reply.Err)
		}
	}
	return len(entries), nil
}

// TruncateSnapshotted drops every entry covered by the latest snapshot
// boundary and compacts the backing store, returning how many entries were
// dropped. Call it after a successful SaveFile.
func (j *Journal) TruncateSnapshotted() (int, error) {
	boundary := j.snapshotted()
	if boundary == 0 {
		return 0, nil
	}
	var dead [][]byte
	err := j.kv.Range([]byte("b/"), func(key, _ []byte) bool {
		var seq uint64
		if _, err := fmt.Sscanf(string(key), "b/%016x", &seq); err == nil && seq <= boundary {
			dead = append(dead, append([]byte(nil), key...))
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, k := range dead {
		if err := j.kv.Delete(k); err != nil {
			return 0, err
		}
	}
	if len(dead) > 0 {
		if err := j.kv.Compact(); err != nil {
			return 0, err
		}
	}
	return len(dead), nil
}

// Fsyncs returns the number of WAL fsyncs the journal has performed — the
// write-amplification counter the loadsweep records.
func (j *Journal) Fsyncs() int64 { return j.kv.FsyncCount() }

// SyncCoalesced returns how many durability requests were absorbed by an
// already-covering fsync (group-commit effectiveness).
func (j *Journal) SyncCoalesced() int64 { return j.kv.SyncCoalesced() }

// Sync forces pending entries durable (shutdown path).
func (j *Journal) Sync() error { return j.kv.Sync() }

// Close flushes and closes the journal.
func (j *Journal) Close() error { return j.kv.Close() }

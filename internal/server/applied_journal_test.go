package server

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/wire"
)

// Striped applied log, direct unit: concurrent appends against concurrent
// snapshots must preserve (a) batch contiguity — one append's ops stay
// adjacent in the merged order — and (b) each appender's own batch order,
// in every observed snapshot, since both follow from contiguous sequence
// assignment. Run under -race this also exercises the stripe-lock
// discipline.
func TestAppliedLogConcurrentAppendSnapshot(t *testing.T) {
	const (
		writers = 8
		batches = 100
		perOp   = 3
	)
	l := newAppliedLog(8)

	check := func(ops []AppliedOp, where string) {
		lastBatch := make(map[int]int) // writer -> last batch index seen
		for i := 0; i < len(ops); {
			var w, b, k int
			if _, err := fmt.Sscanf(ops[i].Path, "w%d/b%d/o%d", &w, &b, &k); err != nil {
				t.Fatalf("%s: unparseable op path %q", where, ops[i].Path)
			}
			if k != 0 {
				t.Fatalf("%s: batch w%d/b%d starts mid-batch at op %d", where, w, b, k)
			}
			// The whole batch must be adjacent.
			for j := 1; j < perOp; j++ {
				want := fmt.Sprintf("w%d/b%d/o%d", w, b, j)
				if i+j >= len(ops) || ops[i+j].Path != want {
					t.Fatalf("%s: batch w%d/b%d torn at offset %d", where, w, b, j)
				}
			}
			if prev, seen := lastBatch[w]; seen && b <= prev {
				t.Fatalf("%s: writer %d batch %d observed after batch %d", where, w, b, prev)
			}
			lastBatch[w] = b
			i += perOp
		}
	}

	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				check(l.snapshot(), "mid-run snapshot")
			}
		}
	}()
	var writersDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			for b := 0; b < batches; b++ {
				ops := make([]AppliedOp, perOp)
				for k := range ops {
					ops[k] = AppliedOp{Kind: wire.NFull, Path: fmt.Sprintf("w%d/b%d/o%d", w, b, k)}
				}
				l.append(ops)
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	readerDone.Wait()

	final := l.snapshot()
	if len(final) != writers*batches*perOp {
		t.Fatalf("final snapshot has %d ops, want %d", len(final), writers*batches*perOp)
	}
	check(final, "final snapshot")
}

// Restore must work across stripe geometries: a snapshot taken from a
// striped server reloads into a differently-striped one with the applied
// order intact, and appends continue the sequence afterwards.
func TestAppliedLogRestoreAcrossStripeCounts(t *testing.T) {
	s1 := NewWithOptions(nil, Options{Shards: 4, AppliedStripes: 8})
	cli := s1.Register()
	for i := 1; i <= 20; i++ {
		r := s1.Push(cli, keyedBatch(cli, uint64(i), fmt.Sprintf("f%d", i), []byte{byte(i)}))
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: %+v", i, r)
		}
	}
	var snap bytes.Buffer
	if err := s1.Save(&snap); err != nil {
		t.Fatal(err)
	}

	s2 := NewWithOptions(nil, Options{Shards: 4, AppliedStripes: 1})
	if err := s2.Load(&snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.AppliedLog(), s2.AppliedLog()) {
		t.Fatal("applied order changed across stripe-count restore")
	}
	s2.Attach(cli)
	if r := s2.Push(cli, keyedBatch(cli, 21, "f21", []byte{21})); r.Statuses[0] != wire.StatusOK {
		t.Fatalf("post-restore push: %+v", r)
	}
	got := s2.AppliedLog()
	if len(got) != 21 || got[20].Path != "f21" {
		t.Fatalf("post-restore append broke the order: %d ops, last %+v", len(got), got[len(got)-1])
	}
}

// Concurrent pushes against concurrent snapshots (Save quiesces the world,
// append holds shard locks): the final snapshot must round-trip into a
// fresh server byte-identically. The -race run is the point.
func TestConcurrentPushSnapshotRestore(t *testing.T) {
	s := NewWithOptions(nil, Options{Shards: 8, AppliedStripes: 8})
	const clients = 4
	ids := make([]uint32, clients)
	for i := range ids {
		ids[i] = s.Register()
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				b := keyedBatch(ids[c], uint64(i), fmt.Sprintf("c%d/f%d", c, i%5), []byte{byte(i)})
				if r := s.Push(ids[c], b); r.Err != "" {
					t.Errorf("client %d push %d: %s", c, i, r.Err)
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("mid-run save: %v", err)
		}
		select {
		case <-done:
			// Final state: snapshot and restore must agree with the source.
			var finalBuf bytes.Buffer
			if err := s.Save(&finalBuf); err != nil {
				t.Fatal(err)
			}
			s2 := New(nil)
			if err := s2.Load(&finalBuf); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(s.Files(), s2.Files()) {
				t.Fatal("restored files differ")
			}
			if !reflect.DeepEqual(s.AppliedLog(), s2.AppliedLog()) {
				t.Fatal("restored applied log differs")
			}
			return
		default:
		}
	}
}

// Crash-replay: acknowledged pushes recorded in the journal survive a crash
// with no snapshot at all — a fresh server replays them in commit order,
// with zero duplicate applications.
func TestJournalReplayAfterCrash(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil)
	s.SetJournal(j)
	cli := s.Register()
	for i := 1; i <= 5; i++ {
		r := s.Push(cli, keyedBatch(cli, uint64(i), fmt.Sprintf("f%d", i), []byte{byte(i)}))
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: %+v", i, r)
		}
	}
	// "Crash": the server object is dropped with no snapshot ever taken.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := New(nil)
	n, err := j2.Replay(s2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replayed %d entries, want 5", n)
	}
	if !reflect.DeepEqual(s.Files(), s2.Files()) {
		t.Fatal("replayed state differs from pre-crash state")
	}
	if !reflect.DeepEqual(s.AppliedLog(), s2.AppliedLog()) {
		t.Fatal("replayed applied order differs")
	}
	if d := s2.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies after replay = %d, want 0", d)
	}
}

// Snapshot-then-replay: with a snapshot mid-stream, replay re-pushes only
// post-boundary entries; anything it does re-push that the snapshot already
// covers is absorbed by the restored dedup state. TruncateSnapshotted then
// drops the covered prefix and the journal still replays correctly.
func TestJournalSnapshotBoundaryAndTruncate(t *testing.T) {
	dir := t.TempDir()
	state := t.TempDir() + "/state.db"
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil)
	s.SetJournal(j)
	cli := s.Register()
	push := func(seq int) {
		b := keyedBatch(cli, uint64(seq), fmt.Sprintf("f%d", seq), []byte{byte(seq)})
		if r := s.Push(cli, b); r.Statuses[0] != wire.StatusOK {
			t.Fatalf("push %d: %+v", seq, r)
		}
	}
	push(1)
	push(2)
	if err := s.SaveFile(state); err != nil { // marks the journal boundary
		t.Fatal(err)
	}
	push(3)
	push(4)
	if err := j.Close(); err != nil { // crash after 4 acknowledged pushes
		t.Fatal(err)
	}

	restart := func() *Server {
		t.Helper()
		s2 := New(nil)
		if _, err := s2.LoadFile(state); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		n, err := j2.Replay(s2)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("replayed %d entries, want 2 (post-boundary only)", n)
		}
		if d := s2.DuplicateApplies(); d != 0 {
			t.Fatalf("DuplicateApplies = %d, want 0", d)
		}
		if !reflect.DeepEqual(s.Files(), s2.Files()) {
			t.Fatal("recovered state differs")
		}
		return s2
	}
	s2 := restart()

	// A snapshot of the recovered server + truncation leaves a journal that
	// replays to the same place.
	j3, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetJournal(j3)
	if err := s2.SaveFile(state); err != nil {
		t.Fatal(err)
	}
	dropped, err := j3.TruncateSnapshotted()
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 4 {
		t.Fatalf("truncated %d entries, want 4", dropped)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := New(nil)
	if _, err := s3.LoadFile(state); err != nil {
		t.Fatal(err)
	}
	j4, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if n, err := j4.Replay(s3); err != nil || n != 0 {
		t.Fatalf("replay after truncate: n=%d err=%v, want 0 entries", n, err)
	}
	if !reflect.DeepEqual(s.Files(), s3.Files()) {
		t.Fatal("state after truncate+restart differs")
	}
}

package server

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/wire"
)

func keyedBatch(cli uint32, seq uint64, path string, content []byte) *wire.Batch {
	return &wire.Batch{Client: cli, Seq: seq, Nodes: []*wire.Node{{
		Kind: wire.NFull, Path: path, Full: content,
		Ver: v(cli, uint64(seq)),
	}}}
}

func TestPushDedupsReplayedSeq(t *testing.T) {
	s := New(nil)
	sm := &metrics.SyncMeter{}
	s.SetSyncMeter(sm)
	cli := s.Register()

	b := keyedBatch(cli, 1, "f", []byte("once"))
	first := s.Push(cli, b)
	if first.Statuses[0] != wire.StatusOK {
		t.Fatalf("first push: %+v", first)
	}
	replay := s.Push(cli, b)
	if replay != first {
		t.Fatal("replay not answered from the reply cache")
	}
	if got, _ := s.FileContent("f"); !bytes.Equal(got, []byte("once")) {
		t.Fatalf("content = %q", got)
	}
	if sm.DedupHits() != 1 {
		t.Fatalf("DedupHits = %d, want 1", sm.DedupHits())
	}
	if d := s.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies = %d, want 0", d)
	}
	// A replay must not be re-forwarded to other clients.
	other := s.Register()
	s.Push(cli, keyedBatch(cli, 2, "g", []byte("fwd")))
	s.Push(cli, keyedBatch(cli, 2, "g", []byte("fwd")))
	if got := s.Poll(other); len(got) != 1 {
		t.Fatalf("other client polled %d batches, want 1", len(got))
	}
}

func TestPushDedupPastReplyCacheWindow(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	chained := func(seq uint64) *wire.Batch {
		b := keyedBatch(cli, seq, "f", []byte{byte(seq)})
		b.Nodes[0].Base = v(cli, seq-1) // zero base for seq 1
		if seq == 1 {
			b.Nodes[0].Base = version.ID{}
		}
		return b
	}
	for seq := uint64(1); seq <= ReplyCacheDepth+2; seq++ {
		r := s.Push(cli, chained(seq))
		if r.Statuses[0] != wire.StatusOK {
			t.Fatalf("seq %d: %+v", seq, r)
		}
	}
	// Seq 1 has been evicted from the reply cache, but the replay is still
	// detected and must not re-apply (which would clobber f with old bytes).
	r := s.Push(cli, chained(1))
	if r.Err != "" || len(r.Statuses) != 1 {
		t.Fatalf("evicted replay reply: %+v", r)
	}
	got, _ := s.FileContent("f")
	if !bytes.Equal(got, []byte{ReplyCacheDepth + 2}) {
		t.Fatalf("evicted replay re-applied: f = %v", got)
	}
	if d := s.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies = %d, want 0", d)
	}
}

func TestPushSeqZeroBypassesDedup(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	b := &wire.Batch{Client: cli, Nodes: []*wire.Node{{Kind: wire.NCreate, Path: "a", Ver: v(cli, 1)}}}
	s.Push(cli, b)
	b2 := &wire.Batch{Client: cli, Nodes: []*wire.Node{{Kind: wire.NWrite, Path: "a",
		Base: v(cli, 1), Ver: v(cli, 2),
		Extents: []wire.Extent{{Data: []byte("x")}}}}}
	if r := s.Push(cli, b2); r.Statuses[0] != wire.StatusOK {
		t.Fatalf("unkeyed pushes must not dedup: %+v", r)
	}
}

func TestAttachExtendsClientIDSpace(t *testing.T) {
	s := New(nil)
	s.Attach(7)
	if got := s.Register(); got != 8 {
		t.Fatalf("Register after Attach(7) = %d, want 8", got)
	}
	// Attaching an already-known ID changes nothing.
	s.Attach(3)
	if got := s.Register(); got != 9 {
		t.Fatalf("Register after Attach(3) = %d, want 9", got)
	}
	// An attached client can be polled without a prior Register.
	if got := s.Poll(7); got != nil {
		t.Fatalf("Poll(attached) = %v", got)
	}
}

// TestDedupSurvivesCrashRestart models the crash window satellite: the
// server applies a keyed batch and snapshots (the paper's wimpy-server
// snapshot policy), then dies before the client sees the reply. The client
// replays the batch against the restarted server; the reply cache and
// applied-seq audit trail must have survived so the replay is absorbed, not
// re-applied.
func TestDedupSurvivesCrashRestart(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	b := keyedBatch(cli, 1, "f", []byte("applied-pre-crash"))
	first := s.Push(cli, b)
	if first.Statuses[0] != wire.StatusOK {
		t.Fatalf("push: %+v", first)
	}
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}

	// "Crash": the server object is discarded; a fresh one loads the
	// snapshot and the client reattaches with its old ID.
	s2 := New(nil)
	sm := &metrics.SyncMeter{}
	s2.SetSyncMeter(sm)
	if err := s2.Load(&snap); err != nil {
		t.Fatal(err)
	}
	s2.Attach(cli)

	replay := s2.Push(cli, b)
	if len(replay.Statuses) != 1 || replay.Statuses[0] != wire.StatusOK || replay.Err != "" {
		t.Fatalf("replay after restart: %+v", replay)
	}
	if sm.DedupHits() != 1 {
		t.Fatalf("DedupHits after restart = %d, want 1", sm.DedupHits())
	}
	if d := s2.DuplicateApplies(); d != 0 {
		t.Fatalf("DuplicateApplies after restart = %d, want 0", d)
	}
	// The restored ID space must not hand the reattached ID to a newcomer.
	if got := s2.Register(); got != cli+1 {
		t.Fatalf("Register after restart = %d, want %d", got, cli+1)
	}
	// And new keyed pushes continue the chain normally.
	if r := s2.Push(cli, keyedBatch(cli, 2, "f2", []byte("post-crash"))); r.Statuses[0] != wire.StatusOK {
		t.Fatalf("post-restart push: %+v", r)
	}
}

// TestLoadAcceptsV1Snapshot ensures pre-idempotency snapshots still load,
// rebuilding empty dedup state.
func TestLoadAcceptsV1Snapshot(t *testing.T) {
	state := snapshotState{
		Version: 1,
		Files:   map[string][]byte{"old": []byte("v1")},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&state); err != nil {
		t.Fatal(err)
	}
	s := New(nil)
	if err := s.Load(&buf); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if got, ok := s.FileContent("old"); !ok || !bytes.Equal(got, []byte("v1")) {
		t.Fatal("v1 content lost")
	}
	cli := s.Register()
	if r := s.Push(cli, keyedBatch(cli, 1, "new", []byte("x"))); r.Statuses[0] != wire.StatusOK {
		t.Fatalf("keyed push after v1 load: %+v", r)
	}
}

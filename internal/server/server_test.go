package server

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/block"
	"repro/internal/cdc"
	"repro/internal/metrics"
	"repro/internal/rsync"
	"repro/internal/version"
	"repro/internal/wire"
)

func v(cli uint32, n uint64) version.ID { return version.ID{Client: cli, Count: n} }

func randBytes(seed int64, n int) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

func push(t *testing.T, s *Server, from uint32, nodes ...*wire.Node) *wire.PushReply {
	t.Helper()
	return s.Push(from, &wire.Batch{Client: from, Nodes: nodes})
}

func mustOK(t *testing.T, r *wire.PushReply) {
	t.Helper()
	for i, st := range r.Statuses {
		if st != wire.StatusOK {
			t.Fatalf("node %d status = %d (err %q)", i, st, r.Err)
		}
	}
}

func TestCreateWriteTruncate(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NWrite, Path: "f", Base: v(cli, 1), Ver: v(cli, 2),
			Extents: []wire.Extent{{Off: 0, Data: []byte("hello world")}}},
		&wire.Node{Kind: wire.NTruncate, Path: "f", Size: 5, Base: v(cli, 2), Ver: v(cli, 3)},
	))
	got, ok := s.FileContent("f")
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("content = %q, %v", got, ok)
	}
	if s.Version("f") != v(cli, 3) {
		t.Fatalf("version = %v", s.Version("f"))
	}
}

func TestWriteWithGapZeroFills(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NWrite, Path: "f", Base: v(cli, 1), Ver: v(cli, 2),
			Extents: []wire.Extent{{Off: 10, Data: []byte("x")}}},
	))
	got, _ := s.FileContent("f")
	want := append(make([]byte, 10), 'x')
	if !bytes.Equal(got, want) {
		t.Fatalf("content = %v", got)
	}
}

func TestRenameLinkUnlink(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	s.SeedFile("a", []byte("content"))
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NLink, Path: "a", Dst: "b", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NRename, Path: "a", Dst: "c", Ver: v(cli, 2)},
		&wire.Node{Kind: wire.NUnlink, Path: "b", Base: v(cli, 1)},
	))
	if _, ok := s.FileContent("a"); ok {
		t.Fatal("a survives rename")
	}
	if _, ok := s.FileContent("b"); ok {
		t.Fatal("b survives unlink")
	}
	got, ok := s.FileContent("c")
	if !ok || !bytes.Equal(got, []byte("content")) {
		t.Fatalf("c = %q, %v", got, ok)
	}
	if s.Version("c") != v(cli, 2) {
		t.Fatalf("c version = %v", s.Version("c"))
	}
}

func TestDeltaAgainstBasePath(t *testing.T) {
	// The Word atomic group: rename f->t0, create t1, delta t1 (base t0),
	// rename t1->f, then unlink t0.
	s := New(nil)
	cli := s.Register()
	oldContent := randBytes(1, 20000)
	s.SeedFile("f", oldContent)

	newContent := append([]byte(nil), oldContent...)
	copy(newContent[5000:5100], randBytes(2, 100))
	d := rsync.DeltaLocal(oldContent, newContent, 4096, nil)

	r := s.Push(cli, &wire.Batch{Client: cli, Atomic: true, Nodes: []*wire.Node{
		{Kind: wire.NRename, Path: "f", Dst: "t0", Ver: v(cli, 1)},
		{Kind: wire.NCreate, Path: "t1", Ver: v(cli, 2)},
		{Kind: wire.NDelta, Path: "t1", BasePath: "t0", Delta: d, Base: v(cli, 2), Ver: v(cli, 3)},
		{Kind: wire.NRename, Path: "t1", Dst: "f", Base: v(cli, 3), Ver: v(cli, 4)},
	}})
	mustOK(t, r)
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NUnlink, Path: "t0", Base: v(cli, 1)}))

	got, ok := s.FileContent("f")
	if !ok || !bytes.Equal(got, newContent) {
		t.Fatal("transactional update did not reproduce new content")
	}
	if _, ok := s.FileContent("t0"); ok {
		t.Fatal("t0 not cleaned up")
	}
}

func TestDeltaAgainstSelf(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	oldContent := randBytes(3, 10000)
	s.SeedFile("f", oldContent)
	newContent := append([]byte(nil), oldContent...)
	newContent = append(newContent, randBytes(4, 500)...)
	d := rsync.DeltaLocal(oldContent, newContent, 4096, nil)
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NDelta, Path: "f", Delta: d, Ver: v(cli, 1)}))
	got, _ := s.FileContent("f")
	if !bytes.Equal(got, newContent) {
		t.Fatal("self-delta mismatched")
	}
}

func TestFullNode(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	content := randBytes(5, 5000)
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NFull, Path: "f", Full: content, Ver: v(cli, 1)}))
	got, _ := s.FileContent("f")
	if !bytes.Equal(got, content) {
		t.Fatal("full node mismatched")
	}
}

func TestCDCNodeWithDedup(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	cfg := cdc.Config{MinSize: 64, AvgSize: 256, MaxSize: 1024}
	content := randBytes(6, 10000)
	chunks := cdc.Split(content, cfg, nil)

	// First upload: all chunk data present.
	var refs []wire.ChunkRef
	for _, c := range chunks {
		refs = append(refs, wire.ChunkRef{Hash: c.Hash, Len: c.Len, Data: content[c.Off : c.Off+c.Len]})
	}
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "f", Chunks: refs, Ver: v(cli, 1)}))
	got, _ := s.FileContent("f")
	if !bytes.Equal(got, content) {
		t.Fatal("cdc assembly mismatched")
	}

	// Second upload of a locally-edited file: unchanged chunks as bare
	// references (dedup), changed chunks with data.
	edited := append([]byte(nil), content...)
	copy(edited[5000:5010], randBytes(7, 10))
	echunks := cdc.Split(edited, cfg, nil)
	refs = refs[:0]
	for _, c := range echunks {
		ref := wire.ChunkRef{Hash: c.Hash, Len: c.Len}
		if !chunkKnown(chunks, c.Hash) {
			ref.Data = edited[c.Off : c.Off+c.Len]
		}
		refs = append(refs, ref)
	}
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "f", Base: v(cli, 1), Chunks: refs, Ver: v(cli, 2)}))
	got, _ = s.FileContent("f")
	if !bytes.Equal(got, edited) {
		t.Fatal("deduplicated cdc assembly mismatched")
	}
}

func chunkKnown(chunks []cdc.Chunk, h block.Strong) bool {
	for _, c := range chunks {
		if c.Hash == h {
			return true
		}
	}
	return false
}

func TestCDCUnknownChunkFails(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	r := push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "f",
		Chunks: []wire.ChunkRef{{Hash: [16]byte{1}, Len: 10}}, Ver: v(cli, 1)})
	if r.Statuses[0] != wire.StatusError {
		t.Fatalf("status = %d, want error", r.Statuses[0])
	}
	if _, ok := s.FileContent("f"); ok {
		t.Fatal("failed cdc node left partial state")
	}
}

func TestAtomicBatchRollsBackOnError(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	s.SeedFile("keep", []byte("original"))
	r := s.Push(cli, &wire.Batch{Client: cli, Atomic: true, Nodes: []*wire.Node{
		{Kind: wire.NWrite, Path: "keep", Ver: v(cli, 1),
			Extents: []wire.Extent{{Off: 0, Data: []byte("CLOBBER!")}}},
		{Kind: wire.NRename, Path: "missing", Dst: "x", Ver: v(cli, 2)},
	}})
	for _, st := range r.Statuses {
		if st != wire.StatusError {
			t.Fatalf("statuses = %v, want all error", r.Statuses)
		}
	}
	got, _ := s.FileContent("keep")
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("atomic rollback failed: %q", got)
	}
	if !s.Version("keep").IsZero() {
		t.Fatal("version survived rollback")
	}
}

func TestConflictFirstWriteWins(t *testing.T) {
	s := New(nil)
	a := s.Register()
	b := s.Register() // two clients => history retained

	// Client A creates and writes the file.
	mustOK(t, push(t, s, a,
		&wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(a, 1)},
		&wire.Node{Kind: wire.NWrite, Path: "f", Base: v(a, 1), Ver: v(a, 2),
			Extents: []wire.Extent{{Off: 0, Data: []byte("AAAA")}}},
	))
	s.Poll(b) // b observes

	// Both edit concurrently from base <a,2>. A wins the race.
	mustOK(t, push(t, s, a, &wire.Node{Kind: wire.NWrite, Path: "f",
		Base: v(a, 2), Ver: v(a, 3), Extents: []wire.Extent{{Off: 0, Data: []byte("A2")}}}))
	r := push(t, s, b, &wire.Node{Kind: wire.NWrite, Path: "f",
		Base: v(a, 2), Ver: v(b, 1), Extents: []wire.Extent{{Off: 2, Data: []byte("B!")}}})

	if r.Statuses[0] != wire.StatusConflict {
		t.Fatalf("status = %d, want conflict", r.Statuses[0])
	}
	// First write won: f holds A's content.
	got, _ := s.FileContent("f")
	if !bytes.Equal(got, []byte("A2AA")) {
		t.Fatalf("f = %q, first-write-wins violated", got)
	}
	// B's update was applied to its proper base and kept as a conflict
	// version.
	if len(r.Conflicts) != 1 {
		t.Fatalf("conflicts = %v", r.Conflicts)
	}
	cf, ok := s.FileContent(r.Conflicts[0])
	if !ok || !bytes.Equal(cf, []byte("AAB!")) {
		t.Fatalf("conflict file = %q, %v; want update applied to base AAAA", cf, ok)
	}
}

func TestForwardingToOtherClients(t *testing.T) {
	s := New(nil)
	a := s.Register()
	b := s.Register()
	mustOK(t, push(t, s, a, &wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(a, 1)}))

	if got := s.Poll(a); len(got) != 0 {
		t.Fatal("sender received its own batch")
	}
	batches := s.Poll(b)
	if len(batches) != 1 || batches[0].Nodes[0].Path != "f" {
		t.Fatalf("forwarded = %+v", batches)
	}
	// Poll drains.
	if got := s.Poll(b); len(got) != 0 {
		t.Fatal("Poll did not drain outbox")
	}
}

func TestNoForwardingWithSingleClient(t *testing.T) {
	s := New(nil)
	a := s.Register()
	mustOK(t, push(t, s, a, &wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(a, 1)}))
	if got := s.Poll(a); len(got) != 0 {
		t.Fatal("single client got forwarded data")
	}
}

func TestFetchAndFetchRange(t *testing.T) {
	s := New(nil)
	s.Register()
	content := randBytes(8, 1000)
	s.SeedFile("f", content)
	rep := s.Fetch("f")
	if !rep.Exists || !bytes.Equal(rep.Content, content) {
		t.Fatal("Fetch mismatched")
	}
	if rep := s.Fetch("missing"); rep.Exists {
		t.Fatal("Fetch of missing file claims existence")
	}
	part, err := s.FetchRange("f", 100, 50)
	if err != nil || !bytes.Equal(part, content[100:150]) {
		t.Fatalf("FetchRange = %v, %v", part, err)
	}
	if _, err := s.FetchRange("missing", 0, 1); err == nil {
		t.Fatal("FetchRange of missing file succeeded")
	}
	past, err := s.FetchRange("f", 2000, 10)
	if err != nil || len(past) != 0 {
		t.Fatalf("FetchRange past EOF = %v, %v", past, err)
	}
}

func TestStaleBaseOnStructureNode(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	s.SeedFile("f", []byte("x"))
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NWrite, Path: "f",
		Ver: v(cli, 1), Extents: []wire.Extent{{Off: 0, Data: []byte("y")}}}))
	// Unlink with stale base conflicts.
	r := push(t, s, cli, &wire.Node{Kind: wire.NUnlink, Path: "f", Base: v(cli, 99)})
	if r.Statuses[0] != wire.StatusConflict {
		t.Fatalf("stale unlink status = %d", r.Statuses[0])
	}
	if _, ok := s.FileContent("f"); !ok {
		t.Fatal("file deleted despite conflict")
	}
}

func TestMkdirRmdir(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NMkdir, Path: "d"},
		&wire.Node{Kind: wire.NRmdir, Path: "d"},
	))
}

func TestServerMeterCharged(t *testing.T) {
	m := metrics.NewCPUMeter(metrics.PC)
	s := New(m)
	cli := s.Register()
	data := randBytes(9, 100000)
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "f", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NWrite, Path: "f", Base: v(cli, 1), Ver: v(cli, 2),
			Extents: []wire.Extent{{Off: 0, Data: data}}},
	))
	if m.NanoTicks() == 0 {
		t.Fatal("server meter uncharged")
	}
}

func TestConflictDeltaAppliedToHistoricBase(t *testing.T) {
	// A losing delta must be applied to the base version it was encoded
	// against (retrieved from history), not to the current content.
	s := New(nil)
	a := s.Register()
	b := s.Register()

	base := randBytes(20, 20000)
	mustOK(t, push(t, s, a, &wire.Node{Kind: wire.NFull, Path: "f", Full: base, Ver: v(a, 1)}))
	s.Poll(b)

	// A moves on; B's delta was computed against v(a,1).
	mustOK(t, push(t, s, a, &wire.Node{Kind: wire.NFull, Path: "f",
		Full: randBytes(21, 5000), Base: v(a, 1), Ver: v(a, 2)}))

	edited := append([]byte(nil), base...)
	copy(edited[100:200], randBytes(22, 100))
	d := rsync.DeltaLocal(base, edited, 4096, nil)
	r := push(t, s, b, &wire.Node{Kind: wire.NDelta, Path: "f", Delta: d,
		Base: v(a, 1), Ver: v(b, 1)})
	if r.Statuses[0] != wire.StatusConflict || len(r.Conflicts) != 1 {
		t.Fatalf("reply = %+v", r)
	}
	cf, ok := s.FileContent(r.Conflicts[0])
	if !ok || !bytes.Equal(cf, edited) {
		t.Fatal("conflict file does not hold the delta applied to its proper base")
	}
}

func TestAtomicGroupConflictMaterializesAllContent(t *testing.T) {
	s := New(nil)
	a := s.Register()
	s.Register() // second client => history kept

	mustOK(t, push(t, s, a,
		&wire.Node{Kind: wire.NCreate, Path: "x", Ver: v(a, 1)},
		&wire.Node{Kind: wire.NWrite, Path: "x", Base: v(a, 1), Ver: v(a, 2),
			Extents: []wire.Extent{{Off: 0, Data: []byte("current")}}},
	))

	// An atomic group with one stale node: everything conflicts, the
	// content-bearing members get conflict copies, and the live tree is
	// untouched.
	r := s.Push(a, &wire.Batch{Client: a, Atomic: true, Nodes: []*wire.Node{
		{Kind: wire.NWrite, Path: "x", Base: v(a, 99), Ver: v(a, 10),
			Extents: []wire.Extent{{Off: 0, Data: []byte("STALE")}}},
		{Kind: wire.NWrite, Path: "y", Ver: v(a, 11),
			Extents: []wire.Extent{{Off: 0, Data: []byte("sibling")}}},
	}})
	for _, st := range r.Statuses {
		if st != wire.StatusConflict {
			t.Fatalf("statuses = %v", r.Statuses)
		}
	}
	got, _ := s.FileContent("x")
	if !bytes.Equal(got, []byte("current")) {
		t.Fatalf("live tree changed: %q", got)
	}
	if _, ok := s.FileContent("y"); ok {
		t.Fatal("sibling applied despite group conflict")
	}
	if len(r.Conflicts) == 0 {
		t.Fatal("no conflict copies materialized")
	}
}

func TestRollbackRestoresDirectories(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	r := s.Push(cli, &wire.Batch{Client: cli, Atomic: true, Nodes: []*wire.Node{
		{Kind: wire.NMkdir, Path: "newdir"},
		{Kind: wire.NRename, Path: "missing", Dst: "x", Ver: v(cli, 1)},
	}})
	if r.Statuses[0] != wire.StatusError {
		t.Fatalf("statuses = %v", r.Statuses)
	}
	// The mkdir must have rolled back: re-creating it succeeds cleanly
	// and rmdir works.
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NMkdir, Path: "newdir"},
		&wire.Node{Kind: wire.NRmdir, Path: "newdir"},
	))
}

func TestHeadReportsVersionAndExistence(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	if _, ok := s.Head("nope"); ok {
		t.Fatal("Head claims existence of missing file")
	}
	s.SeedFile("seeded", []byte("x"))
	ver, ok := s.Head("seeded")
	if !ok || !ver.IsZero() {
		t.Fatalf("Head(seeded) = %v, %v", ver, ok)
	}
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NFull, Path: "f",
		Full: []byte("y"), Ver: v(cli, 7)}))
	ver, ok = s.Head("f")
	if !ok || ver != v(cli, 7) {
		t.Fatalf("Head(f) = %v, %v", ver, ok)
	}
}

func TestAppliedLogOrder(t *testing.T) {
	s := New(nil)
	cli := s.Register()
	mustOK(t, push(t, s, cli,
		&wire.Node{Kind: wire.NCreate, Path: "first", Ver: v(cli, 1)},
		&wire.Node{Kind: wire.NCreate, Path: "second", Ver: v(cli, 2)},
	))
	// A failed node must not enter the log.
	push(t, s, cli, &wire.Node{Kind: wire.NRename, Path: "ghost", Dst: "x", Ver: v(cli, 3)})

	log := s.AppliedLog()
	if len(log) != 2 || log[0].Path != "first" || log[1].Path != "second" {
		t.Fatalf("AppliedLog = %+v", log)
	}
}

func TestChunkStoreBudgetEviction(t *testing.T) {
	old := wire.ChunkStoreBudget
	wire.ChunkStoreBudget = 1000
	defer func() { wire.ChunkStoreBudget = old }()

	s := New(nil)
	cli := s.Register()
	first := wire.ChunkRef{Hash: [16]byte{1}, Len: 600, Data: make([]byte, 600)}
	second := wire.ChunkRef{Hash: [16]byte{2}, Len: 600, Data: make([]byte, 600)}
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "a",
		Chunks: []wire.ChunkRef{first}, Ver: v(cli, 1)}))
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "b",
		Chunks: []wire.ChunkRef{second}, Ver: v(cli, 2)})) // evicts chunk 1

	// Referencing the evicted chunk now fails cleanly.
	r := push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "c",
		Chunks: []wire.ChunkRef{{Hash: [16]byte{1}, Len: 600}}, Ver: v(cli, 3)})
	if r.Statuses[0] != wire.StatusError {
		t.Fatalf("evicted chunk reference status = %v", r.Statuses[0])
	}
	// Re-carrying the data re-registers it.
	mustOK(t, push(t, s, cli, &wire.Node{Kind: wire.NCDC, Path: "c",
		Chunks: []wire.ChunkRef{first}, Ver: v(cli, 4)}))
}

package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveFileDirSyncOrdering locks in the crash-ordering fix deltavet's
// crashsafe analyzer found: SaveFile must fsync the parent directory after
// the rename, or a crash can forget the rename entirely.
func TestSaveFileDirSyncOrdering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	s := New(nil)

	calls := 0
	syncDirHook = func(d string) error {
		calls++
		if d != dir {
			t.Errorf("directory fsync on %q, want %q", d, dir)
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("directory fsync before the rename: %v", err)
		}
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Errorf("temp file still present at directory-fsync time: err=%v", err)
		}
		return nil
	}
	defer func() { syncDirHook = nil }()

	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("directory fsyncs = %d, want 1", calls)
	}

	// A failed directory fsync must surface: the caller cannot treat the
	// snapshot as durable.
	boom := errors.New("injected crash at directory fsync")
	syncDirHook = func(string) error { return boom }
	if err := s.SaveFile(path); !errors.Is(err, boom) {
		t.Fatalf("SaveFile error = %v, want the injected crash", err)
	}
	syncDirHook = nil

	// The file that was renamed into place is still loadable.
	s2 := New(nil)
	if ok, err := s2.LoadFile(path); err != nil || !ok {
		t.Fatalf("LoadFile = %v, %v; want true, nil", ok, err)
	}
}

package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/version"
	"repro/internal/wire"
)

// These tests pin the single-encode discipline: one accepted push costs at
// most one binary batch encode, no matter how many places its bytes flow
// (journal, N peer outboxes, N binary poll responses). They assert deltas on
// the process-wide wire.BatchEncodes counter, which AppendBatch — the only
// producer of batch payloads — increments.

func pushBatch(client uint32, path string) *wire.Batch {
	return &wire.Batch{
		Client: client,
		Seq:    1,
		Nodes: []*wire.Node{{
			Kind: wire.NFull,
			Path: path,
			Size: 4,
			Full: []byte("body"),
			Ver:  version.ID{Client: client, Count: 1},
		}},
	}
}

// A batch that arrived over the binary transport carries its wire bytes;
// journaling and applying it must perform zero additional encodes.
func TestJournalAppendZeroAdditionalEncodes(t *testing.T) {
	s := New(nil)
	j, err := OpenJournal(t.TempDir(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s.SetJournal(j)
	id := s.Register()

	b := pushBatch(id, "f")
	raw := wire.AppendBatch(nil, b) // the transport-side encode
	decoded, err := wire.DecodeBatchPayload(raw, true)
	if err != nil {
		t.Fatal(err)
	}
	eb := wire.NewEncodedBatchRaw(decoded, raw)

	before := wire.BatchEncodes()
	if rep := s.PushEncoded(id, eb); rep.Err != "" {
		t.Fatalf("push: %s", rep.Err)
	}
	if d := wire.BatchEncodes() - before; d != 0 {
		t.Fatalf("journaled push performed %d additional encodes, want 0", d)
	}
	if got, _ := s.FileContent("f"); !bytes.Equal(got, []byte("body")) {
		t.Fatalf("file content = %q after push", got)
	}

	// The journal recorded the retained bytes: a fresh server replays them.
	s2 := New(nil)
	if n, err := j.Replay(s2); err != nil || n != 1 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	if got, _ := s2.FileContent("f"); !bytes.Equal(got, []byte("body")) {
		t.Fatalf("replayed content = %q", got)
	}
}

// Forwarding one push to a 64-client sharing group (journal on, every peer
// polled in encoded form) costs exactly one encode: the lazy one performed
// the first time the batch's bytes are needed.
func TestForwardFanoutSingleEncodeAt64(t *testing.T) {
	const peers = 64
	s := New(nil)
	j, err := OpenJournal(t.TempDir(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	s.SetJournal(j)

	pusher := s.RegisterGroup(1)
	ids := make([]uint32, peers)
	for i := range ids {
		ids[i] = s.RegisterGroup(1)
	}

	// An in-process push (no transport bytes yet): the one encode below is
	// the lazy AppendBatch the journal or first poll splice triggers.
	b := pushBatch(pusher, "shared")
	eb := wire.NewEncodedBatch(b)

	before := wire.BatchEncodes()
	if rep := s.PushEncoded(pusher, eb); rep.Err != "" {
		t.Fatalf("push: %s", rep.Err)
	}
	var first *wire.EncodedBatch
	for _, id := range ids {
		ebs := s.PollEncoded(id)
		if len(ebs) != 1 {
			t.Fatalf("client %d polled %d batches, want 1", id, len(ebs))
		}
		// Every outbox holds the same immutable EncodedBatch value.
		if first == nil {
			first = ebs[0]
		} else if ebs[0] != first {
			t.Fatal("outboxes hold distinct EncodedBatch values; fan-out copied")
		}
		// Splicing its bytes (what a binary poll response does) re-uses the
		// one payload.
		if len(ebs[0].Bytes()) == 0 {
			t.Fatal("empty encoded payload")
		}
	}
	if d := wire.BatchEncodes() - before; d != 1 {
		t.Fatalf("push + journal + %d-peer fan-out performed %d encodes, want exactly 1", peers, d)
	}
}

// The shared batch value must reach every peer unmutated: the server rebinds
// nothing and copies nothing after forwarding, so N pollers see the pushed
// content, and repeated Bytes calls return the identical payload slice.
func TestForwardSharedBatchImmutable(t *testing.T) {
	const peers = 8
	s := New(nil)
	pusher := s.RegisterGroup(2)
	ids := make([]uint32, peers)
	for i := range ids {
		ids[i] = s.RegisterGroup(2)
	}

	b := pushBatch(pusher, "doc")
	if rep := s.PushEncoded(pusher, wire.NewEncodedBatch(b)); rep.Err != "" {
		t.Fatalf("push: %s", rep.Err)
	}

	var raw []byte
	for _, id := range ids {
		ebs := s.PollEncoded(id)
		if len(ebs) != 1 {
			t.Fatalf("client %d polled %d batches, want 1", id, len(ebs))
		}
		got := ebs[0].Batch()
		if got.Client != pusher || len(got.Nodes) != 1 ||
			got.Nodes[0].Path != "doc" || !bytes.Equal(got.Nodes[0].Full, []byte("body")) {
			t.Fatalf("client %d saw mutated batch: %+v", id, got)
		}
		if raw == nil {
			raw = ebs[0].Bytes()
		} else if &raw[0] != &ebs[0].Bytes()[0] {
			t.Fatal("peers see different payload backing arrays; bytes were copied or re-encoded")
		}
		// The payload must decode back to the same batch — proof nothing
		// downstream scribbled on the shared bytes.
		dec, err := wire.DecodeBatchPayload(ebs[0].Bytes(), false)
		if err != nil || dec.Nodes[0].Path != "doc" {
			t.Fatalf("shared payload corrupt: %v", err)
		}
	}
}

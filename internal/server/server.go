// Package server implements the cloud side of the sync protocol. Per the
// paper's design goal, it is deliberately thin: it stores files, applies the
// incremental data clients generate (write extents, rsync deltas, CDC chunk
// lists, whole files), enforces client-assigned version control with
// first-write-wins conflict reconciliation (§III-C), applies DeltaCFS's
// backindex batches transactionally (§III-E), and forwards applied updates
// to other clients sharing the files (§III-D).
package server

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/version"
	"repro/internal/wire"
)

// HistoryDepth is how many recent versions of each file the server retains
// for conflict resolution ("servers keep recent versions of files, the
// incremental data can still be applied to the proper file to generate the
// conflict version"). History is only recorded while more than one client is
// registered — a single writer can never conflict with itself.
const HistoryDepth = 3

// revision is one retained file version.
type revision struct {
	ver     version.ID
	content []byte
}

// ReplyCacheDepth bounds how many PushReplies the server retains per client
// for answering replayed batches. Replays older than the cache window are
// still detected (via the max-applied Seq) and acknowledged with an empty OK
// reply rather than re-applied.
const ReplyCacheDepth = 64

// replyCache is one client's idempotency state: the highest batch Seq the
// server has applied for the client, plus a bounded FIFO of recent replies so
// ambiguous retransmissions get the exact original answer back.
type replyCache struct {
	maxSeq  uint64
	replies map[uint64]*wire.PushReply
	order   []uint64
}

func (rc *replyCache) record(seq uint64, reply *wire.PushReply) {
	if seq > rc.maxSeq {
		rc.maxSeq = seq
	}
	rc.replies[seq] = reply
	rc.order = append(rc.order, seq)
	for len(rc.order) > ReplyCacheDepth {
		delete(rc.replies, rc.order[0])
		rc.order = rc.order[1:]
	}
}

// Server is the cloud store. All methods are safe for concurrent use.
type Server struct {
	mu sync.Mutex

	files map[string][]byte
	dirs  map[string]bool
	vers  *version.Map
	// history holds recent content snapshots per path, newest last.
	history map[string][]revision
	// chunks is the server-wide content-addressed chunk store
	// (Seafile/Dropbox dedup), bounded to wire.ChunkStoreBudget bytes with
	// FIFO eviction; clients mirror the policy (baseline.ChunkTracker).
	chunks     map[block.Strong][]byte
	chunkFIFO  []block.Strong
	chunkBytes int64

	outboxes   map[uint32][]*wire.Batch
	nextClient uint32

	// dedup holds per-client idempotency state ((Client, Seq) replay
	// detection plus the bounded reply cache).
	dedup map[uint32]*replyCache
	// appliedSeqs counts, per (client, seq), how many times a keyed batch
	// was actually applied. It is maintained unconditionally — independent
	// of the dedup logic it audits — so tests can assert zero duplicate
	// applies even if the dedup path regresses.
	appliedSeqs map[uint32]map[uint64]int

	// applied records the order in which content-bearing nodes were
	// committed, for the upload-ordering experiment (Table IV).
	applied []AppliedOp

	meter     *metrics.CPUMeter
	syncMeter *metrics.SyncMeter
}

// AppliedOp is one committed operation in server order.
type AppliedOp struct {
	Kind wire.NodeKind
	Path string
}

// New returns an empty server charging CPU work to meter (may be nil).
func New(meter *metrics.CPUMeter) *Server {
	return &Server{
		files:       make(map[string][]byte),
		dirs:        map[string]bool{".": true},
		vers:        version.NewMap(),
		history:     make(map[string][]revision),
		chunks:      make(map[block.Strong][]byte),
		outboxes:    make(map[uint32][]*wire.Batch),
		dedup:       make(map[uint32]*replyCache),
		appliedSeqs: make(map[uint32]map[uint64]int),
		meter:       meter,
	}
}

// SetSyncMeter wires a fault-tolerance meter (may be nil) that counts
// reply-cache dedup hits.
func (s *Server) SetSyncMeter(m *metrics.SyncMeter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncMeter = m
}

// Meter returns the server's CPU meter.
func (s *Server) Meter() *metrics.CPUMeter { return s.meter }

// Register assigns a new client ID and creates its forwarding outbox.
func (s *Server) Register() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextClient++
	id := s.nextClient
	s.outboxes[id] = nil
	return id
}

// Attach re-binds a reconnecting transport to an existing client ID: the
// outbox (and any idempotency state) survives, and the ID space stays
// collision-free even if the ID was minted before a server restart.
func (s *Server) Attach(client uint32) {
	if client == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if client > s.nextClient {
		s.nextClient = client
	}
	if _, ok := s.outboxes[client]; !ok {
		s.outboxes[client] = nil
	}
}

// SeedFile installs initial content outside the measured run (both sides of
// an experiment start from identical state). No version is assigned: the
// file starts at the zero version, matching clients that seed the same way.
func (s *Server) SeedFile(path string, content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = append([]byte(nil), content...)
}

// SeedChunk installs a content-addressed chunk in the server's chunk store
// outside the measured run (matching a client primed to treat the chunk as
// server-known).
func (s *Server) SeedChunk(h block.Strong, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeChunk(h, append([]byte(nil), data...))
}

// storeChunk inserts a chunk, evicting FIFO past the budget. Re-inserting a
// resident chunk is a no-op (matching the client-side tracker).
func (s *Server) storeChunk(h block.Strong, data []byte) {
	if _, ok := s.chunks[h]; ok {
		return
	}
	s.chunks[h] = data
	s.chunkFIFO = append(s.chunkFIFO, h)
	s.chunkBytes += int64(len(data))
	for s.chunkBytes > wire.ChunkStoreBudget && len(s.chunkFIFO) > 0 {
		old := s.chunkFIFO[0]
		s.chunkFIFO = s.chunkFIFO[1:]
		if d, ok := s.chunks[old]; ok {
			s.chunkBytes -= int64(len(d))
			delete(s.chunks, old)
		}
	}
}

// FileContent returns a copy of the file's current content.
func (s *Server) FileContent(path string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), c...), true
}

// Files returns the stored paths (unordered).
func (s *Server) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	return out
}

// AppliedLog returns the order in which operations were committed.
func (s *Server) AppliedLog() []AppliedOp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AppliedOp(nil), s.applied...)
}

// Head returns path's current version and existence — the metadata lookup
// clients use to (re)synchronize their version maps after a restart.
func (s *Server) Head(path string) (version.ID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[path]
	return s.vers.Get(path), ok
}

// Version returns the current version of path.
func (s *Server) Version(path string) version.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vers.Get(path)
}

// Fetch returns a file's content and version.
func (s *Server) Fetch(path string) *wire.FetchReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meter.RPC(1)
	c, ok := s.files[path]
	if !ok {
		return &wire.FetchReply{}
	}
	out := append([]byte(nil), c...)
	s.meter.Copy(int64(len(out)))
	s.meter.Net(int64(len(out)))
	return &wire.FetchReply{Content: out, Ver: s.vers.Get(path), Exists: true}
}

// FetchRange returns part of a file (clipped at EOF).
func (s *Server) FetchRange(path string, off, n int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meter.RPC(1)
	c, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("server: fetch range: %s does not exist", path)
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("server: fetch range: negative range")
	}
	if off >= int64(len(c)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(c)) {
		end = int64(len(c))
	}
	out := append([]byte(nil), c[off:end]...)
	s.meter.Copy(int64(len(out)))
	s.meter.Net(int64(len(out)))
	return out, nil
}

// Poll drains the forwarding outbox of the given client.
func (s *Server) Poll(client uint32) []*wire.Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.outboxes[client]
	s.outboxes[client] = nil
	for _, b := range out {
		s.meter.Net(b.WireSize())
	}
	return out
}

// Push applies a batch from the given client. Atomic batches are applied
// all-or-nothing. On a version conflict, first-write-wins: the server's
// current content stays the latest version and the incoming update is
// materialized as a conflict file (for every file the batch touches, per
// §III-E's atomic-group conflict rule).
func (s *Server) Push(from uint32, b *wire.Batch) *wire.PushReply {
	s.mu.Lock()
	defer s.mu.Unlock()

	s.meter.RPC(1)
	s.meter.Net(b.WireSize())

	// Idempotency: a keyed batch at or below the highest Seq applied for
	// this client is a replay of an ambiguous push — answer it from the
	// reply cache (or with an empty OK for replays past the cache window)
	// without re-applying or re-forwarding.
	if b.Seq != 0 {
		rc := s.dedup[from]
		if rc != nil && b.Seq <= rc.maxSeq {
			s.syncMeter.DedupHit()
			if cached, ok := rc.replies[b.Seq]; ok {
				return cached
			}
			return &wire.PushReply{Statuses: make([]wire.ApplyStatus, len(b.Nodes))}
		}
	}

	reply := &wire.PushReply{Statuses: make([]wire.ApplyStatus, len(b.Nodes))}

	if b.Atomic {
		s.pushAtomic(from, b, reply)
	} else {
		for i, n := range b.Nodes {
			s.applyOne(from, n, i, reply)
		}
	}

	// Forward the batch to every other registered client (§III-D: "when
	// the cloud receives data from a client, besides storing the data it
	// also forwards the data to other shared clients").
	if len(s.outboxes) > 1 {
		for id := range s.outboxes {
			if id != from {
				s.outboxes[id] = append(s.outboxes[id], b)
			}
		}
	}

	if b.Seq != 0 {
		seqs := s.appliedSeqs[from]
		if seqs == nil {
			seqs = make(map[uint64]int)
			s.appliedSeqs[from] = seqs
		}
		seqs[b.Seq]++
		rc := s.dedup[from]
		if rc == nil {
			rc = &replyCache{replies: make(map[uint64]*wire.PushReply)}
			s.dedup[from] = rc
		}
		rc.record(b.Seq, reply)
	}
	return reply
}

// DuplicateApplies returns how many keyed batches were applied more than
// once — the duplicate-apply tripwire chaos tests assert stays zero. The
// count is maintained independently of the dedup logic it checks.
func (s *Server) DuplicateApplies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dups := 0
	for _, seqs := range s.appliedSeqs {
		for _, n := range seqs {
			if n > 1 {
				dups += n - 1
			}
		}
	}
	return dups
}

// applyOne applies a single (non-atomic) node.
func (s *Server) applyOne(from uint32, n *wire.Node, i int, reply *wire.PushReply) {
	tx := newTxn(s)
	err := s.applyNode(tx, n)
	switch {
	case errors.Is(err, errConflict):
		tx.rollback()
		reply.Statuses[i] = wire.StatusConflict
		reply.Conflicts = append(reply.Conflicts, s.materializeConflict(from, []*wire.Node{n})...)
	case err != nil:
		tx.rollback()
		reply.Statuses[i] = wire.StatusError
		reply.Err = err.Error()
	default:
		tx.commit()
		reply.Statuses[i] = wire.StatusOK
	}
}

// pushAtomic applies all nodes or none. If any node conflicts, the whole
// group becomes a conflict (§III-E): none of it is applied to the live tree
// and every content-bearing file in the group gets a conflict copy. Version
// checks run during application, so bases chaining within the batch (node
// k's base is node k-1's version) resolve correctly.
func (s *Server) pushAtomic(from uint32, b *wire.Batch, reply *wire.PushReply) {
	tx := newTxn(s)
	for i, n := range b.Nodes {
		err := s.applyNode(tx, n)
		if err == nil {
			continue
		}
		tx.rollback()
		if errors.Is(err, errConflict) {
			for j := range b.Nodes {
				reply.Statuses[j] = wire.StatusConflict
			}
			reply.Conflicts = append(reply.Conflicts, s.materializeConflict(from, b.Nodes)...)
			return
		}
		for j := range b.Nodes {
			reply.Statuses[j] = wire.StatusError
		}
		reply.Err = fmt.Sprintf("node %d (%s %s): %v", i, n.Kind, n.Path, err)
		return
	}
	tx.commit()
	for j := range b.Nodes {
		reply.Statuses[j] = wire.StatusOK
	}
}

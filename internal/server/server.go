// Package server implements the cloud side of the sync protocol. Per the
// paper's design goal, it is deliberately thin: it stores files, applies the
// incremental data clients generate (write extents, rsync deltas, CDC chunk
// lists, whole files), enforces client-assigned version control with
// first-write-wins conflict reconciliation (§III-C), applies DeltaCFS's
// backindex batches transactionally (§III-E), and forwards applied updates
// to other clients sharing the files (§III-D).
//
// Server state is path-sharded (shard.go): batches touching disjoint files
// apply concurrently, read-only RPCs take shared locks, and per-client state
// (reply cache, outbox) lives under per-client locks, so throughput scales
// with cores instead of serializing every RPC on one mutex.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/storagefault"
	"repro/internal/version"
	"repro/internal/wire"
)

// HistoryDepth is how many recent versions of each file the server retains
// for conflict resolution ("servers keep recent versions of files, the
// incremental data can still be applied to the proper file to generate the
// conflict version"). History is only recorded while more than one client is
// registered — a single writer can never conflict with itself.
const HistoryDepth = 3

// revision is one retained file version.
type revision struct {
	ver     version.ID
	content []byte
}

// ReplyCacheDepth bounds how many PushReplies the server retains per client
// for answering replayed batches. Replays older than the cache window are
// still detected (via the max-applied Seq) and acknowledged with an empty OK
// reply rather than re-applied.
const ReplyCacheDepth = 64

// replyCache is one client's idempotency state: the highest batch Seq the
// server has applied for the client, plus a bounded FIFO of recent replies so
// ambiguous retransmissions get the exact original answer back.
type replyCache struct {
	maxSeq  uint64
	replies map[uint64]*wire.PushReply
	order   []uint64
}

func (rc *replyCache) record(seq uint64, reply *wire.PushReply) {
	if seq > rc.maxSeq {
		rc.maxSeq = seq
	}
	rc.replies[seq] = reply
	rc.order = append(rc.order, seq)
	for len(rc.order) > ReplyCacheDepth {
		delete(rc.replies, rc.order[0])
		rc.order = rc.order[1:]
	}
}

// Server is the cloud store. All methods are safe for concurrent use.
type Server struct {
	// shards stripe the per-path state; immutable after New.
	shards    []*fileShard
	shardMask uint32

	// The content-addressed chunk store (Seafile/Dropbox dedup), bounded to
	// wire.ChunkStoreBudget bytes with global-FIFO eviction that clients
	// mirror insert-for-insert (baseline.ChunkTracker). Residency is
	// striped: resolving a chunk reference — the dedup hot path — takes
	// only the owning stripe's lock. Inserts and evictions serialize on
	// chunkInsertMu (ordering: chunkInsertMu, then one stripe.mu at a
	// time), which keeps the eviction order exactly the client-visible
	// global FIFO while never blocking concurrent reference resolution.
	chunkInsertMu sync.Mutex
	chunkFIFO     []block.Strong
	chunkStripes  [chunkStripeCount]chunkStripe
	chunkBytes    atomic.Int64

	// clients is the per-client state registry; groups indexes the sharing
	// groups (forwarding scope) by group ID. Both are guarded by clientMu.
	clientMu   sync.RWMutex
	clients    map[uint32]*clientState
	groups     map[uint32]*groupInfo
	nextClient uint32

	// applied records the order in which content-bearing nodes were
	// committed, for the upload-ordering experiment (Table IV). Striped
	// (applied.go) so commits never funnel through one global mutex.
	applied *appliedLog

	// journal, when set, is the durable push WAL: every batch is recorded
	// before it is applied, under the batch's shard locks, so a replay
	// after a crash re-applies in commit order (journal.go).
	journal atomic.Pointer[Journal]

	// degraded, when set, is the read-only mode reason: the journal could
	// not make a batch durable (poisoned WAL, ENOSPC), so writes are
	// refused with a typed wire error while reads keep serving. Cleared
	// only by ClearDegraded (an operator action after fixing storage).
	degraded atomic.Pointer[string]

	// fsys is the file-IO layer SaveFile/LoadFile write through
	// (storagefault.OS when Options.FS is nil).
	fsys storagefault.FS

	meter     *metrics.CPUMeter
	syncMeter atomic.Pointer[metrics.SyncMeter]
}

// groupInfo is one sharing group: the registered members that receive each
// other's forwarded batches. size is read lock-free on the push hot path
// (the sharing gate); members is guarded by Server.clientMu.
type groupInfo struct {
	size    atomic.Int32
	members map[uint32]*clientState
}

// AppliedOp is one committed operation in server order.
type AppliedOp struct {
	Kind wire.NodeKind
	Path string
}

// Options tunes a server's concurrency structure.
type Options struct {
	// Shards is the file-state stripe count (0 → DefaultShards, rounded up
	// to a power of two, minimum 1).
	Shards int
	// AppliedStripes is the applied-op log stripe count (0 → same as the
	// resolved Shards). 1 reproduces the historical global-appliedMu
	// behavior: every commit appends under one mutex — the baseline the
	// loadsweep compares the striped log against.
	AppliedStripes int
	// FS is the file-IO layer snapshots (SaveFile/LoadFile) write
	// through. nil means the real file system; the crash-point harness
	// substitutes a storagefault.SimDisk or Injector.
	FS storagefault.FS
}

// New returns an empty server with DefaultShards stripes, charging CPU work
// to meter (may be nil).
func New(meter *metrics.CPUMeter) *Server {
	return NewWithShards(meter, DefaultShards)
}

// NewWithShards returns an empty server with the given stripe count (rounded
// up to a power of two, minimum 1). A 1-shard server serializes every batch
// on a single lock — the global-lock configuration the property tests use as
// oracle and the throughput sweep uses as baseline; it also gets a 1-stripe
// applied log, completing the "one global mutex" oracle shape.
func NewWithShards(meter *metrics.CPUMeter, shards int) *Server {
	if shards < 1 {
		shards = 1
	}
	return NewWithOptions(meter, Options{Shards: shards, AppliedStripes: shards})
}

// NewWithOptions returns an empty server with an explicit concurrency
// configuration.
func NewWithOptions(meter *metrics.CPUMeter, o Options) *Server {
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	appliedStripes := o.AppliedStripes
	if appliedStripes <= 0 {
		appliedStripes = n
	}
	fsys := o.FS
	if fsys == nil {
		fsys = storagefault.OS
	}
	s := &Server{
		shards:    make([]*fileShard, n),
		shardMask: uint32(n - 1),
		clients:   make(map[uint32]*clientState),
		groups:    make(map[uint32]*groupInfo),
		applied:   newAppliedLog(appliedStripes),
		fsys:      fsys,
		meter:     meter,
	}
	for i := range s.shards {
		s.shards[i] = newFileShard()
	}
	for i := range s.chunkStripes {
		s.chunkStripes[i].data = make(map[block.Strong][]byte)
	}
	s.shard(".").dirs["."] = true
	return s
}

// ShardCount returns the number of file-state stripes.
func (s *Server) ShardCount() int { return len(s.shards) }

// enterDegraded switches the server into read-only degraded mode. The first
// reason wins; later failures while already degraded are redundant.
func (s *Server) enterDegraded(reason string) {
	s.degraded.CompareAndSwap(nil, &reason)
}

// Degraded returns the read-only mode reason ("" when healthy).
func (s *Server) Degraded() string {
	if r := s.degraded.Load(); r != nil {
		return *r
	}
	return ""
}

// ClearDegraded re-enables writes. Call only after the storage fault is
// actually fixed (journal reopened on healthy storage): clearing it over a
// still-poisoned journal just degrades again on the next push.
func (s *Server) ClearDegraded() { s.degraded.Store(nil) }

// SetSyncMeter wires a fault-tolerance meter (may be nil) that counts
// reply-cache dedup hits and outbox drops.
func (s *Server) SetSyncMeter(m *metrics.SyncMeter) {
	s.syncMeter.Store(m)
}

// syncM returns the wired SyncMeter (nil-safe: all its methods accept nil).
func (s *Server) syncM() *metrics.SyncMeter { return s.syncMeter.Load() }

// Meter returns the server's CPU meter.
func (s *Server) Meter() *metrics.CPUMeter { return s.meter }

// Register assigns a new client ID in the default sharing group (group 0 —
// the historical "everyone shares with everyone" namespace) and creates its
// forwarding outbox.
func (s *Server) Register() uint32 { return s.RegisterGroup(0) }

// RegisterGroup assigns a new client ID in the given sharing group. Batches
// are forwarded only to other registered members of the pusher's group, and
// conflict history is retained only while a group has more than one member —
// the multi-tenant scope that keeps forwarding O(group) instead of
// O(all clients) when thousands of unrelated tenants share one server.
func (s *Server) RegisterGroup(group uint32) uint32 {
	s.clientMu.Lock()
	s.nextClient++
	id := s.nextClient
	cs := s.clients[id]
	if cs == nil {
		cs = newClientState()
		s.clients[id] = cs
	}
	fresh := !cs.registered
	cs.registered = true
	s.joinGroupLocked(id, cs, group, fresh)
	s.clientMu.Unlock()
	return id
}

// joinGroupLocked binds cs to its sharing group's registry. The caller holds
// clientMu.
func (s *Server) joinGroupLocked(id uint32, cs *clientState, group uint32, fresh bool) {
	gi := s.groups[group]
	if gi == nil {
		gi = &groupInfo{members: make(map[uint32]*clientState)}
		s.groups[group] = gi
	}
	gi.members[id] = cs
	cs.group.Store(gi)
	if fresh {
		gi.size.Add(1)
	}
}

// Attach re-binds a reconnecting transport to an existing client ID: the
// outbox (and any idempotency state) survives, and the ID space stays
// collision-free even if the ID was minted before a server restart. A fresh
// ID (minted before a restart the server forgot) lands in the default group.
func (s *Server) Attach(client uint32) {
	if client == 0 {
		return
	}
	s.clientMu.Lock()
	if client > s.nextClient {
		s.nextClient = client
	}
	cs := s.clients[client]
	if cs == nil {
		cs = newClientState()
		s.clients[client] = cs
	}
	fresh := !cs.registered
	cs.registered = true
	group := uint32(0)
	if gi := cs.group.Load(); gi != nil && !fresh {
		// Already a member; nothing to rebind.
		s.clientMu.Unlock()
		return
	}
	s.joinGroupLocked(client, cs, group, fresh)
	s.clientMu.Unlock()
}

// SeedFile installs initial content outside the measured run (both sides of
// an experiment start from identical state). No version is assigned: the
// file starts at the zero version, matching clients that seed the same way.
func (s *Server) SeedFile(path string, content []byte) {
	sh := s.shard(path)
	sh.lockOne()
	sh.files[path] = append([]byte(nil), content...)
	sh.unlockOne()
}

// chunkStripeCount stripes the chunk residency maps (power of two). Purely
// a lock-granularity knob: eviction order is global and unaffected.
const chunkStripeCount = 8

// chunkStripe is one lock stripe of the chunk store's residency map.
type chunkStripe struct {
	mu   sync.Mutex
	data map[block.Strong][]byte
}

// chunkStripeOf returns the stripe owning h.
func (s *Server) chunkStripeOf(h block.Strong) *chunkStripe {
	return &s.chunkStripes[int(h[0])&(chunkStripeCount-1)]
}

// SeedChunk installs a content-addressed chunk in the server's chunk store
// outside the measured run (matching a client primed to treat the chunk as
// server-known).
func (s *Server) SeedChunk(h block.Strong, data []byte) {
	s.storeChunk(h, append([]byte(nil), data...))
}

// storeChunk inserts a chunk, evicting global-FIFO past the budget.
// Re-inserting a resident chunk is a no-op (matching the client-side
// tracker). chunkInsertMu serializes inserts so the FIFO — the order the
// client tracker replays — is exactly the insertion order the pushes
// committed in; stripe locks are taken one at a time underneath it, only
// around map mutation.
func (s *Server) storeChunk(h block.Strong, data []byte) {
	s.chunkInsertMu.Lock()
	defer s.chunkInsertMu.Unlock()
	st := s.chunkStripeOf(h)
	st.mu.Lock()
	_, resident := st.data[h]
	if !resident {
		st.data[h] = data
	}
	st.mu.Unlock()
	if resident {
		return
	}
	s.chunkFIFO = append(s.chunkFIFO, h)
	s.chunkBytes.Add(int64(len(data)))
	for s.chunkBytes.Load() > wire.ChunkStoreBudget && len(s.chunkFIFO) > 0 {
		old := s.chunkFIFO[0]
		s.chunkFIFO = s.chunkFIFO[1:]
		ost := s.chunkStripeOf(old)
		ost.mu.Lock()
		if d, ok := ost.data[old]; ok {
			s.chunkBytes.Add(-int64(len(d)))
			delete(ost.data, old)
		}
		ost.mu.Unlock()
	}
}

// chunk returns a copy-free reference to a resident chunk, touching only
// the owning stripe's lock — the dedup hot path never contends with
// inserts to other chunks. The returned slice stays valid even if the
// chunk is evicted after the stripe lock is released: eviction drops the
// map entry, not the backing array.
func (s *Server) chunk(h block.Strong) ([]byte, bool) {
	st := s.chunkStripeOf(h)
	st.mu.Lock()
	d, ok := st.data[h]
	st.mu.Unlock()
	return d, ok
}

// FileContent returns a copy of the file's current content.
func (s *Server) FileContent(path string) ([]byte, bool) {
	sh := s.shard(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), c...), true
}

// Files returns the stored paths in sorted order. Shard count and map
// iteration must not leak into the result: callers (snapshots, test
// oracles) compare these listings across configurations.
func (s *Server) Files() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for p := range sh.files {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Dirs returns the stored directory paths in sorted order.
func (s *Server) Dirs() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for p := range sh.dirs {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// AppliedLog returns the order in which operations were committed (merged
// across the applied-log stripes, sorted by commit sequence).
func (s *Server) AppliedLog() []AppliedOp {
	return s.applied.snapshot()
}

// Head returns path's current version and existence — the metadata lookup
// clients use to (re)synchronize their version maps after a restart.
func (s *Server) Head(path string) (version.ID, bool) {
	sh := s.shard(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.files[path]
	return sh.getVer(path), ok
}

// Version returns the current version of path.
func (s *Server) Version(path string) version.ID {
	sh := s.shard(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.getVer(path)
}

// Fetch returns a file's content and version.
func (s *Server) Fetch(path string) *wire.FetchReply {
	s.meter.RPC(1)
	sh := s.shard(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.files[path]
	if !ok {
		return &wire.FetchReply{}
	}
	out := append([]byte(nil), c...)
	s.meter.Copy(int64(len(out)))
	s.meter.Net(int64(len(out)))
	return &wire.FetchReply{Content: out, Ver: sh.getVer(path), Exists: true}
}

// FetchRange returns part of a file (clipped at EOF).
func (s *Server) FetchRange(path string, off, n int64) ([]byte, error) {
	s.meter.RPC(1)
	sh := s.shard(path)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.files[path]
	if !ok {
		return nil, fmt.Errorf("server: fetch range: %s does not exist", path)
	}
	if off < 0 || n < 0 {
		return nil, fmt.Errorf("server: fetch range: negative range")
	}
	if off >= int64(len(c)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(c)) {
		end = int64(len(c))
	}
	out := append([]byte(nil), c[off:end]...)
	s.meter.Copy(int64(len(out)))
	s.meter.Net(int64(len(out)))
	return out, nil
}

// Poll drains the forwarding outbox of the given client. The drain is an
// O(1) slice swap under the client's own lock, so polling never contends
// with pushes beyond that single pointer exchange.
func (s *Server) Poll(client uint32) []*wire.Batch {
	ebs := s.PollEncoded(client)
	if ebs == nil {
		return nil
	}
	out := make([]*wire.Batch, len(ebs))
	for i, eb := range ebs {
		out[i] = eb.Batch()
	}
	return out
}

// PollEncoded drains the client's outbox in encoded form: the transport
// splices each batch's already-encoded payload into a binary poll response
// verbatim, so delivering one push to N pollers costs at most one encode
// total, not N.
func (s *Server) PollEncoded(client uint32) []*wire.EncodedBatch {
	cs := s.lookupClient(client)
	if cs == nil {
		return nil
	}
	out := cs.drain()
	for _, eb := range out {
		s.meter.Net(eb.Batch().WireSize())
	}
	return out
}

// OutboxStats reports forwarding-outbox pressure aggregated over clients.
type OutboxStats struct {
	// Depth is the current total of undelivered forwarded batches.
	Depth int
	// Peak is the highest per-client depth observed.
	Peak int
	// Drops counts forwarded batches evicted past OutboxDepthLimit.
	Drops int64
}

// OutboxStats returns the current forwarding-outbox pressure.
func (s *Server) OutboxStats() OutboxStats {
	var st OutboxStats
	for _, ref := range s.clientSnapshot() {
		ref.cs.outMu.Lock()
		st.Depth += ref.cs.outPending
		if ref.cs.outPeak > st.Peak {
			st.Peak = ref.cs.outPeak
		}
		st.Drops += ref.cs.outDrops
		ref.cs.outMu.Unlock()
	}
	return st
}

// Push applies a batch from the given client. Atomic batches are applied
// all-or-nothing. On a version conflict, first-write-wins: the server's
// current content stays the latest version and the incoming update is
// materialized as a conflict file (for every file the batch touches, per
// §III-E's atomic-group conflict rule).
//
// Concurrency: the batch's shard lock set is computed up front and taken in
// ascending order; batches on disjoint shards run in parallel. A keyed batch
// additionally holds its client's pushMu across check→apply→record so a
// racing replay of the same Seq can never double-apply.
func (s *Server) Push(from uint32, b *wire.Batch) *wire.PushReply {
	return s.PushEncoded(from, wire.NewEncodedBatch(b))
}

// PushEncoded is Push for batches that travel with their binary wire
// payload: the journal appends eb's exact bytes and the forwarding fan-out
// enqueues eb itself into every sharing peer's outbox, so one accepted
// batch is encoded at most once end to end (zero times when it arrived
// over the binary transport).
func (s *Server) PushEncoded(from uint32, eb *wire.EncodedBatch) *wire.PushReply {
	b := eb.Batch()
	s.meter.RPC(1)
	s.meter.Net(b.WireSize())

	// Trust boundary: everything in b is attacker-controlled until it
	// passes shape validation. Reject before touching dedup state or any
	// shard — a malformed batch must leave no trace.
	if err := b.Validate(); err != nil {
		statuses := make([]wire.ApplyStatus, len(b.Nodes))
		for i := range statuses {
			statuses[i] = wire.StatusError
		}
		return &wire.PushReply{Statuses: statuses, Err: err.Error()}
	}

	// Read-only degraded mode: the journal can no longer make batches
	// durable, so accepting this push would hand out an ack the next
	// crash breaks. Refuse with the typed marker ResilientClient
	// classifies as retryable-after-backoff; reads are unaffected.
	if reason := s.Degraded(); reason != "" {
		s.syncM().DegradedReject()
		statuses := make([]wire.ApplyStatus, len(b.Nodes))
		for i := range statuses {
			statuses[i] = wire.StatusError
		}
		return &wire.PushReply{Statuses: statuses, Err: wire.DegradedMsg(reason)}
	}

	cs := s.ensureClient(from)

	// Idempotency: a keyed batch at or below the highest Seq applied for
	// this client is a replay of an ambiguous push — answer it from the
	// reply cache (or with an empty OK for replays past the cache window)
	// without re-applying or re-forwarding.
	if b.Seq != 0 {
		cs.pushMu.Lock()
		defer cs.pushMu.Unlock()
		if b.Seq <= cs.dedup.maxSeq {
			s.syncM().DedupHit()
			if cached, ok := cs.dedup.replies[b.Seq]; ok {
				return cached
			}
			return &wire.PushReply{Statuses: make([]wire.ApplyStatus, len(b.Nodes))}
		}
	}

	reply := &wire.PushReply{Statuses: make([]wire.ApplyStatus, len(b.Nodes))}

	// The sharing gate — forwarding and conflict-history retention — is
	// scoped to the pusher's sharing group: a lock-free size read, so ten
	// thousand single-tenant clients never pay for each other's pushes.
	gi := cs.group.Load()
	if gi == nil {
		gi = s.defaultGroup(cs)
	}
	share := gi != nil && gi.size.Load() > 1

	locks := s.lockSetFor(from, b)
	locks.lock()

	// Durability: record the batch in the push journal (when wired) while
	// holding the batch's shard locks and before applying — WAL discipline;
	// replay re-applies journaled batches in exactly this commit order.
	if j := s.journal.Load(); j != nil {
		//deltavet:allow blockunderlock WAL-before-apply: the journal append must happen inside the batch's lock scope so replay order is commit order; the fsync is group-committed
		if err := j.Record(from, eb); err != nil {
			locks.unlock()
			// A journal that cannot append is a storage failure (poisoned
			// WAL after a failed fsync, ENOSPC), and per fsyncgate it will
			// not heal by retrying: enter read-only degraded mode so every
			// refusal from here on is honest and typed. The batch was NOT
			// applied — the client keeps it buffered and retries after the
			// operator repairs storage.
			reason := fmt.Sprintf("journal: %v", err)
			s.enterDegraded(reason)
			s.syncM().DegradedReject()
			for i := range reply.Statuses {
				reply.Statuses[i] = wire.StatusError
			}
			reply.Err = wire.DegradedMsg(reason)
			return reply
		}
	}

	if b.Atomic {
		s.pushAtomic(from, b, reply, share)
	} else {
		for i, n := range b.Nodes {
			s.applyOne(from, n, i, reply, share)
		}
	}

	// Forward the batch to every other registered member of the pusher's
	// sharing group (§III-D: "when the cloud receives data from a client,
	// besides storing the data it also forwards the data to other shared
	// clients"). Forwarding happens while the shard locks are still held so
	// two batches racing on the same file land in every outbox in their
	// commit order.
	if share {
		dropped, peak := s.forward(from, gi, eb)
		// Backpressure: tell the pusher when a peer's outbox is at its
		// bound (evicting, or one more forward away from it) instead of
		// dropping forwards silently. The push itself still succeeded.
		if dropped > 0 || (OutboxDepthLimit > 0 && peak >= OutboxDepthLimit) {
			reply.Throttled = true
			s.syncM().OutboxThrottle()
		}
	}

	locks.unlock()

	if b.Seq != 0 {
		cs.appliedSeqs[b.Seq]++
		cs.dedup.record(b.Seq, reply)
	}
	return reply
}

// defaultGroup resolves the default sharing group for a client that pushed
// without registering (bare pushers get idempotency state but no explicit
// group). The lookup is cached on the client state so subsequent pushes
// skip the registry lock.
func (s *Server) defaultGroup(cs *clientState) *groupInfo {
	s.clientMu.RLock()
	gi := s.groups[0]
	s.clientMu.RUnlock()
	if gi != nil {
		cs.group.Store(gi)
	}
	return gi
}

// forward appends eb to the outbox of every other registered member of the
// pusher's sharing group, reporting how many batches the enqueues evicted
// and the deepest outbox seen. All outboxes share the one immutable
// EncodedBatch — fan-out is O(peers) pointer pushes with no payload copy.
// The caller holds the batch's shard locks; the registry read-lock is
// released before any outbox lock is taken (lock ordering rule 3).
func (s *Server) forward(from uint32, gi *groupInfo, eb *wire.EncodedBatch) (int64, int) {
	type fwdTarget struct {
		id uint32
		cs *clientState
	}
	s.clientMu.RLock()
	targets := make([]fwdTarget, 0, len(gi.members))
	for id, cs := range gi.members {
		if id != from && cs.registered {
			targets = append(targets, fwdTarget{id, cs})
		}
	}
	s.clientMu.RUnlock()
	// Enqueue in client-id order so outbox contents are identical across
	// runs regardless of registry map iteration.
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
	sm := s.syncM()
	var dropped int64
	var peak int
	for _, t := range targets {
		depth, d := t.cs.enqueue(eb)
		dropped += d
		if depth > peak {
			peak = depth
		}
	}
	sm.OutboxDepth(int64(peak))
	if dropped > 0 {
		sm.OutboxDrop(dropped)
	}
	return dropped, peak
}

// DuplicateApplies returns how many keyed batches were applied more than
// once — the duplicate-apply tripwire chaos tests assert stays zero. The
// count is maintained independently of the dedup logic it checks.
func (s *Server) DuplicateApplies() int {
	dups := 0
	for _, ref := range s.clientSnapshot() {
		ref.cs.pushMu.Lock()
		for _, n := range ref.cs.appliedSeqs {
			if n > 1 {
				dups += n - 1
			}
		}
		ref.cs.pushMu.Unlock()
	}
	return dups
}

// applyOne applies a single (non-atomic) node. The caller holds the batch's
// shard locks.
func (s *Server) applyOne(from uint32, n *wire.Node, i int, reply *wire.PushReply, share bool) {
	tx := newTxn(s, share)
	err := s.applyNode(tx, n)
	switch {
	case errors.Is(err, errConflict):
		tx.rollback()
		reply.Statuses[i] = wire.StatusConflict
		reply.Conflicts = append(reply.Conflicts, s.materializeConflict(from, []*wire.Node{n})...)
	case err != nil:
		tx.rollback()
		reply.Statuses[i] = wire.StatusError
		reply.Err = err.Error()
	default:
		tx.commit()
		reply.Statuses[i] = wire.StatusOK
	}
}

// pushAtomic applies all nodes or none. If any node conflicts, the whole
// group becomes a conflict (§III-E): none of it is applied to the live tree
// and every content-bearing file in the group gets a conflict copy. Version
// checks run during application, so bases chaining within the batch (node
// k's base is node k-1's version) resolve correctly.
func (s *Server) pushAtomic(from uint32, b *wire.Batch, reply *wire.PushReply, share bool) {
	tx := newTxn(s, share)
	for i, n := range b.Nodes {
		err := s.applyNode(tx, n)
		if err == nil {
			continue
		}
		tx.rollback()
		if errors.Is(err, errConflict) {
			for j := range b.Nodes {
				reply.Statuses[j] = wire.StatusConflict
			}
			reply.Conflicts = append(reply.Conflicts, s.materializeConflict(from, b.Nodes)...)
			return
		}
		for j := range b.Nodes {
			reply.Statuses[j] = wire.StatusError
		}
		reply.Err = fmt.Sprintf("node %d (%s %s): %v", i, n.Kind, n.Path, err)
		return
	}
	tx.commit()
	for j := range b.Nodes {
		reply.Statuses[j] = wire.StatusOK
	}
}

// Package deltacfs is the public API of the DeltaCFS reproduction — a file
// sync framework for cloud storage services that combines NFS-like file RPC
// with triggered delta encoding (Zhang et al., "DeltaCFS: Boosting Delta
// Sync for Cloud Storage Services by Learning from NFS", ICDCS 2017).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - Engine: the DeltaCFS client. It implements FS, the file-operation
//     interface applications write through (the FUSE position); operations
//     are intercepted, batched in the Sync Queue, and synced incrementally.
//   - Server: the thin cloud side; serve it over TCP/TLS with Serve or bind
//     a client directly in-process with NewLoopback.
//   - MemFS / DirFS: backing stores (in-memory, or a real directory).
//   - The paper's workload traces and the evaluation harness live in
//     internal/trace and internal/experiment, reachable through the
//     cmd/benchall, cmd/tracegen and cmd/replay binaries and re-exported
//     helpers below.
//
// Quickstart (see examples/quickstart for the full program):
//
//	srv := deltacfs.NewServer(nil)
//	clk := &deltacfs.Clock{}
//	eng, _ := deltacfs.NewEngine(deltacfs.Config{
//		Backing:  deltacfs.NewMemFS(),
//		Endpoint: deltacfs.NewLoopback(srv, nil, nil),
//		Clock:    clk,
//	})
//	fs := eng.FS()
//	fs.Create("notes.txt")
//	fs.WriteAt("notes.txt", 0, []byte("hello"))
//	fs.Close("notes.txt")
//	clk.Advance(5 * time.Second) // pass the sync-queue delay
//	eng.Tick(clk.Now())          // uploads
package deltacfs

import (
	"crypto/tls"
	"net"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Core client types.
type (
	// Engine is the DeltaCFS client engine (the paper's contribution).
	Engine = core.Engine
	// Config configures an Engine.
	Config = core.Config
	// Stats reports engine activity counters.
	Stats = core.Stats
	// RecoveryReport summarizes a post-crash integrity scan.
	RecoveryReport = core.RecoveryReport
)

// Cloud-side and transport types.
type (
	// Server is the DeltaCFS cloud.
	Server = server.Server
	// Loopback is an in-process client endpoint bound to a Server.
	Loopback = server.Loopback
	// Endpoint is the client↔cloud interface.
	Endpoint = wire.Endpoint
	// Batch is the upload unit.
	Batch = wire.Batch
)

// File-system types.
type (
	// FS is the file-operation interface applications write through.
	FS = vfs.FS
	// MemFS is the in-memory backing store.
	MemFS = vfs.MemFS
	// DirFS backs the engine with a real directory.
	DirFS = vfs.DirFS
	// FileInfo describes a file.
	FileInfo = vfs.FileInfo
)

// Measurement types.
type (
	// Clock is the logical clock driving delays and expirations.
	Clock = clock.Clock
	// CPUMeter accounts deterministic CPU work.
	CPUMeter = metrics.CPUMeter
	// TrafficMeter accounts wire traffic.
	TrafficMeter = metrics.TrafficMeter
	// Trace is a replayable workload.
	Trace = trace.Trace
)

// NewEngine builds a DeltaCFS client engine.
func NewEngine(cfg Config) (*Engine, error) { return core.New(cfg) }

// NewServer builds a cloud server charging CPU work to meter (may be nil).
func NewServer(meter *CPUMeter) *Server { return server.New(meter) }

// NewLoopback registers an in-process client on srv. meter and traffic
// account the client side and may be nil.
func NewLoopback(srv *Server, meter *CPUMeter, traffic *TrafficMeter) *Loopback {
	return server.NewLoopback(srv, meter, traffic)
}

// NewMemFS returns an empty in-memory backing store.
func NewMemFS() *MemFS { return vfs.NewMemFS() }

// NewDirFS returns a backing store rooted at dir (created if needed).
func NewDirFS(dir string) (*DirFS, error) { return vfs.NewDirFS(dir) }

// NewCPUMeter returns a PC-platform CPU meter.
func NewCPUMeter() *CPUMeter { return metrics.NewCPUMeter(metrics.PC) }

// Serve accepts sync clients on lis until it is closed.
func Serve(lis net.Listener, srv *Server) error { return wire.Serve(lis, srv) }

// Dial connects to a remote Server. tlsConf may be nil for plaintext; meter
// and traffic may be nil.
func Dial(addr string, tlsConf *tls.Config, meter *CPUMeter, traffic *TrafficMeter) (Endpoint, error) {
	return wire.Dial(addr, tlsConf, meter, traffic)
}

// SelfSignedTLS generates matched server/client TLS configurations with an
// in-memory self-signed certificate.
func SelfSignedTLS() (serverConf, clientConf *tls.Config, err error) {
	return wire.SelfSignedTLS()
}

// Paper traces, for users who want to replay the evaluation workloads
// against their own systems. scale 1.0 reproduces the paper's dimensions.
func PaperAppendTrace(scale float64) *Trace {
	return trace.Append(trace.PaperAppendConfig().Scaled(scale))
}

// PaperRandomTrace returns the random-write trace at the given scale.
func PaperRandomTrace(scale float64) *Trace {
	return trace.Random(trace.PaperRandomConfig().Scaled(scale))
}

// PaperWordTrace returns the transactional-update trace at the given scale.
func PaperWordTrace(scale float64) *Trace {
	return trace.Word(trace.PaperWordConfig().Scaled(scale))
}

// PaperWeChatTrace returns the SQLite in-place-update trace at the given
// scale.
func PaperWeChatTrace(scale float64) *Trace {
	return trace.WeChat(trace.PaperWeChatConfig().Scaled(scale))
}

# Convenience entry points mirroring the CI jobs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race lint bench

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full-module race pass; -count=1 defeats the cache so seeded concurrency
# tests explore fresh schedules every run.
race:
	$(GO) test -race -count=1 -timeout 20m ./...

# go vet plus the project invariant analyzers (cmd/deltavet).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/deltavet ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

// Command replay runs a serialized trace (see cmd/tracegen) through a sync
// system and reports CPU and traffic measurements.
//
// Usage:
//
//	replay -sys DeltaCFS -platform pc word.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	sys := flag.String("sys", "DeltaCFS", "system: Dropbox|Seafile|NFSv4|DeltaCFS|Dropsync")
	platform := flag.String("platform", "pc", "platform: pc|mobile")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: replay [-sys NAME] [-platform pc|mobile] <trace file>")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	tr, err := trace.Load(f)
	f.Close()
	if err != nil {
		log.Fatalf("replay: %v", err)
	}

	p := metrics.PC
	if *platform == "mobile" {
		p = metrics.Mobile
	}
	r, err := experiment.RunTrace(experiment.System(*sys), tr, p)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Printf("trace    %s (%s)\n", tr.Name, tr.Desc)
	fmt.Printf("system   %s on %s\n", r.System, r.Platform)
	fmt.Printf("client   %d CPU ticks\n", r.ClientTicks)
	fmt.Printf("server   %d CPU ticks\n", r.ServerTicks)
	fmt.Printf("traffic  %.2f MB up / %.2f MB down (update %.2f MB, TUE %.2f)\n",
		r.UploadMB, r.DownloadMB, float64(r.UpdateBytes)/(1<<20), r.TUE)
	if r.System == experiment.SysDeltaCFS {
		fmt.Printf("deltas   %d triggered, %d in-place\n", r.DeltaTriggers, r.InPlaceDeltas)
	}
	fmt.Printf("wall     %s\n", r.Wall.Round(1e6))
}

// Command deltacfs-client runs a DeltaCFS client over a real directory and
// a small interactive shell for issuing file operations through the
// interception layer. Everything typed at the prompt flows through the
// DeltaCFS engine (relation table, sync queue, delta triggers) and syncs to
// the server.
//
// Usage:
//
//	deltacfs-client -addr localhost:7420 -dir ./sandbox
//
// Shell commands:
//
//	write <path> <off> <text>   write text at offset
//	cat <path>                  print file content
//	append <path> <text>        append text
//	create <path>               create/truncate a file
//	rename <old> <new>          rename
//	link <old> <new>            hard link
//	rm <path>                   unlink
//	ls                          list files
//	sync                        flush the sync queue now
//	stats                       engine counters
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vfs"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7420", "server address")
	dir := flag.String("dir", "./deltacfs-sandbox", "local sync directory")
	codec := flag.String("codec", "auto", "wire codec: auto|binary|gob")
	flag.Parse()

	var wc wire.Codec
	switch *codec {
	case "auto":
		wc = wire.CodecAuto
	case "binary":
		wc = wire.CodecBinary
	case "gob":
		wc = wire.CodecGob
	default:
		log.Fatalf("deltacfs-client: unknown -codec %q (want auto|binary|gob)", *codec)
	}

	backing, err := vfs.NewDirFS(*dir)
	if err != nil {
		log.Fatalf("deltacfs-client: %v", err)
	}
	meter := metrics.NewCPUMeter(metrics.PC)
	traffic := &metrics.TrafficMeter{}
	ep, err := wire.DialWith(*addr, wire.DialOpts{Meter: meter, Traffic: traffic, Codec: wc})
	if err != nil {
		log.Fatalf("deltacfs-client: %v", err)
	}
	defer ep.Close()

	clk := &clock.Clock{}
	start := time.Now()
	tick := func() {
		clk.Set(time.Since(start))
	}

	eng, err := core.New(core.Config{
		Backing:  backing,
		Endpoint: ep,
		Clock:    clk,
		Meter:    meter,
	})
	if err != nil {
		log.Fatalf("deltacfs-client: %v", err)
	}
	fs := eng.FS()
	fmt.Printf("deltacfs-client %d: syncing %s to %s\n", eng.ClientID(), *dir, *addr)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		tick()
		eng.Tick(clk.Now())
		args := strings.Fields(sc.Text())
		if len(args) == 0 {
			fmt.Print("> ")
			continue
		}
		var err error
		switch args[0] {
		case "quit", "exit":
			if err := eng.Drain(); err != nil {
				log.Printf("drain: %v", err)
			}
			return
		case "create":
			if len(args) == 2 {
				err = fs.Create(args[1])
			}
		case "write":
			if len(args) >= 4 {
				var off int64
				off, err = strconv.ParseInt(args[2], 10, 64)
				if err == nil {
					err = fs.WriteAt(args[1], off, []byte(strings.Join(args[3:], " ")))
				}
			}
		case "append":
			if len(args) >= 3 {
				st, serr := fs.Stat(args[1])
				off := int64(0)
				if serr == nil {
					off = st.Size
				}
				err = fs.WriteAt(args[1], off, []byte(strings.Join(args[2:], " ")))
			}
		case "cat":
			if len(args) == 2 {
				var data []byte
				data, err = fs.ReadFile(args[1])
				if err == nil {
					fmt.Printf("%s\n", data)
				}
			}
		case "rename":
			if len(args) == 3 {
				err = fs.Rename(args[1], args[2])
			}
		case "link":
			if len(args) == 3 {
				err = fs.Link(args[1], args[2])
			}
		case "rm":
			if len(args) == 2 {
				err = fs.Unlink(args[1])
			}
		case "ls":
			var names []string
			names, err = fs.List("")
			for _, n := range names {
				fmt.Println(n)
			}
		case "sync":
			err = eng.Drain()
		case "stats":
			st := eng.Stats()
			fmt.Printf("delta triggers %d, in-place deltas %d, batches %d, nodes %d\n",
				st.DeltaTriggers, st.InPlaceDeltas, st.UploadedBatches, st.UploadedNodes)
			fmt.Printf("uploaded %d B, downloaded %d B, cpu %d ticks\n",
				traffic.Uploaded(), traffic.Downloaded(), meter.Ticks())
		default:
			fmt.Printf("unknown command %q\n", args[0])
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
		}
		tick()
		eng.Tick(clk.Now())
		fmt.Print("> ")
	}
}

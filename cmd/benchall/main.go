// Command benchall regenerates every table and figure of the paper's
// evaluation section. By default it runs everything at the given trace
// scale; individual experiments can be selected.
//
// Usage:
//
//	benchall [-scale 1.0] [-exp all|fig1|fig2|table2|fig8|fig9|table3|table4|chaos]
//	         [-chaos-seeds 5] [-json report.json]
//
// Scale 1.0 reproduces the paper's trace dimensions (a 131 MB SQLite file,
// 373 update rounds, ...); smaller scales shrink files and counts
// proportionally for quick runs. With -json, the numbers behind the selected
// tables and figures are additionally written to the given path as one
// machine-readable document.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

func main() {
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper dimensions)")
	exp := flag.String("exp", "all", "experiment: all|fig1|fig2|table2|fig8|fig9|table3|table4|chaos")
	iters := flag.Int("filebench-iters", 2000, "filebench iterations per personality")
	chaosSeeds := flag.Int("chaos-seeds", 5, "chaos schedules per fault profile")
	jsonPath := flag.String("json", "", "also write the assembled numbers as JSON to this path")
	flag.Parse()

	if err := run(*exp, *scale, *iters, *chaosSeeds, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, iters, chaosSeeds int, jsonPath string) error {
	out := os.Stdout
	needMatrix := exp == "all" || exp == "table2" || exp == "fig8" || exp == "fig9"
	rep := &experiment.Report{Scale: scale}

	var m *experiment.Matrix
	if needMatrix {
		fmt.Fprintf(out, "running the evaluation matrix at scale %.2f (this replays all four traces through all systems)...\n\n", scale)
		var err error
		m, err = experiment.RunMatrix(scale)
		if err != nil {
			return err
		}
		rep.AddMatrix(m)
	}

	if exp == "all" || exp == "fig1" {
		rs, err := experiment.Fig1(scale)
		if err != nil {
			return err
		}
		experiment.PrintFig1(out, rs)
		fmt.Fprintln(out)
		rep.Fig1 = rs
	}
	if exp == "all" || exp == "fig2" {
		r, err := experiment.Fig2(scale)
		if err != nil {
			return err
		}
		experiment.PrintFig2(out, r)
		fmt.Fprintln(out)
		rep.Fig2 = r
	}
	if exp == "all" || exp == "table2" {
		m.PrintTable2(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "fig8" {
		m.PrintFig8(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "fig9" {
		m.PrintFig9(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "table3" {
		rs, err := experiment.Table3(iters)
		if err != nil {
			return err
		}
		experiment.PrintTable3(out, rs)
		fmt.Fprintln(out)
		rep.Table3 = rs
	}
	if exp == "all" || exp == "table4" {
		rs, err := experiment.Table4()
		if err != nil {
			return err
		}
		experiment.PrintTable4(out, rs)
		fmt.Fprintln(out)
		rep.Table4 = rs
	}
	// The chaos sweep is opt-in only (not part of "all"): its convergence
	// and duplicate-apply columns are deterministic, but the raw transport
	// counters (retries, dedup hits) depend on goroutine scheduling, which
	// would break the byte-diff determinism of the default output.
	if exp == "chaos" {
		rs, err := experiment.ChaosSweep(chaosSeeds)
		if err != nil {
			return err
		}
		experiment.PrintChaos(out, rs)
		fmt.Fprintln(out)
		rep.Chaos = rs
	}
	if jsonPath != "" {
		if err := rep.WriteFile(jsonPath); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote JSON report to %s\n", jsonPath)
	}
	return nil
}

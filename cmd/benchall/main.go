// Command benchall regenerates every table and figure of the paper's
// evaluation section. By default it runs everything at the given trace
// scale; individual experiments can be selected.
//
// Usage:
//
//	benchall [-scale 1.0] [-exp all|fig1|fig2|table2|fig8|fig9|table3|table4|chaos|crashstorm|scaling|loadsweep]
//	         [-chaos-seeds 5] [-storm-seeds 5] [-clients 1,2,4,8,16] [-json report.json] [-allow-dirty]
//	         [-load-clients 64,512,2048,10000] [-load-ops 40000] [-group-size 4]
//	         [-commit-windows 0,1ms,5ms,20ms]
//	         [-cpuprofile cpu.pprof] [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// Scale 1.0 reproduces the paper's trace dimensions (a 131 MB SQLite file,
// 373 update rounds, ...); smaller scales shrink files and counts
// proportionally for quick runs. With -json, the numbers behind the selected
// tables and figures are additionally written to the given path as one
// machine-readable document.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/loadgen"
	"repro/internal/wire"
)

// loadWorkerArg re-invokes this binary as a loadsweep client worker: big
// rungs split their client herd across subprocesses so the descriptor
// budget fits (each loopback connection costs two fds in one process).
const loadWorkerArg = "__loadworker"

func main() {
	if len(os.Args) > 1 && os.Args[1] == loadWorkerArg {
		if err := loadgen.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchall %s: %v\n", loadWorkerArg, err)
			os.Exit(1)
		}
		return
	}
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper dimensions)")
	exp := flag.String("exp", "all", "experiment: all|fig1|fig2|table2|fig8|fig9|table3|table4|chaos|crashstorm|scaling|loadsweep")
	iters := flag.Int("filebench-iters", 2000, "filebench iterations per personality")
	chaosSeeds := flag.Int("chaos-seeds", 5, "chaos schedules per fault profile")
	stormSeeds := flag.Int("storm-seeds", 5, "crash-storm seeds per storage fault profile")
	allowDirty := flag.Bool("allow-dirty", false, "permit -json output from a dirty working tree")
	clients := flag.String("clients", "1,2,4,8,16", "client counts for the -exp scaling throughput sweep")
	scalingOps := flag.Int("scaling-ops", 1500, "pushes per client in the -exp scaling sweep")
	loadClients := flag.String("load-clients", "64,512,2048,10000", "client counts for the -exp loadsweep TCP sweep")
	loadOps := flag.Int("load-ops", 40000, "total pushes per loadsweep rung (split across clients)")
	loadReps := flag.Int("load-reps", 2, "runs per loadsweep configuration (best kept; alternating order)")
	groupSize := flag.Int("group-size", 4, "clients per sharing group in the loadsweep")
	commitWindows := flag.String("commit-windows", "0,1ms,5ms,20ms",
		"journal commit windows for the loadsweep durability sweep (empty = skip)")
	codec := flag.String("codec", "auto", "wire codec for TCP experiments: auto|binary|gob")
	codecCompare := flag.Bool("codec-compare", true,
		"also drive each loadsweep rung with gob clients (the gob-vs-binary comparison)")
	jsonPath := flag.String("json", "", "also write the assembled numbers as JSON to this path")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this path")
	mutexProf := flag.String("mutexprofile", "", "write a mutex-contention profile to this path")
	blockProf := flag.String("blockprofile", "", "write a blocking profile to this path")
	flag.Parse()

	stop, err := startProfiles(*cpuProf, *mutexProf, *blockProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	runErr := run(runOpts{
		exp: *exp, scale: *scale, iters: *iters, chaosSeeds: *chaosSeeds, stormSeeds: *stormSeeds,
		clients: *clients, scalingOps: *scalingOps,
		loadClients: *loadClients, loadOps: *loadOps, loadReps: *loadReps, groupSize: *groupSize,
		commitWindows: *commitWindows, jsonPath: *jsonPath, allowDirty: *allowDirty,
		codec: *codec, codecCompare: *codecCompare,
	})
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", runErr)
		os.Exit(1)
	}
}

// startProfiles enables the requested runtime profilers and returns the
// function that stops them and writes the profile files. Profiles are written
// even when the run itself fails, so a crashing experiment can still be
// diagnosed.
func startProfiles(cpuPath, mutexPath, blockPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	writeProf := func(name, path string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s profile: %w", name, err)
		}
		defer f.Close()
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			return fmt.Errorf("%s profile: %w", name, err)
		}
		return nil
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if err := writeProf("mutex", mutexPath); err != nil {
			return err
		}
		return writeProf("block", blockPath)
	}, nil
}

// parseClients parses the -clients list ("1,2,4,8,16").
func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid -clients entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients is empty")
	}
	return out, nil
}

// runOpts carries the parsed flags into run.
type runOpts struct {
	exp           string
	scale         float64
	iters         int
	chaosSeeds    int
	stormSeeds    int
	clients       string
	scalingOps    int
	loadClients   string
	loadOps       int
	loadReps      int
	groupSize     int
	commitWindows string
	jsonPath      string
	allowDirty    bool
	codec         string
	codecCompare  bool
}

// parseCodec maps the -codec flag to a wire.Codec, and names the codec the
// run's clients will actually speak (auto negotiates binary against this
// repo's own server).
func parseCodec(s string) (wire.Codec, string, error) {
	switch s {
	case "auto", "":
		return wire.CodecAuto, string(wire.CodecBinary), nil
	case "binary":
		return wire.CodecBinary, string(wire.CodecBinary), nil
	case "gob":
		return wire.CodecGob, string(wire.CodecGob), nil
	default:
		return wire.CodecAuto, "", fmt.Errorf("invalid -codec %q (want auto|binary|gob)", s)
	}
}

// parseWindows parses the -commit-windows list ("0,1ms,5ms,20ms").
func parseWindows(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("invalid -commit-windows entry %q", part)
		}
		out = append(out, d)
	}
	return out, nil
}

func run(o runOpts) error {
	exp, scale, iters, chaosSeeds := o.exp, o.scale, o.iters, o.chaosSeeds
	clients, scalingOps, jsonPath := o.clients, o.scalingOps, o.jsonPath
	out := os.Stdout
	needMatrix := exp == "all" || exp == "table2" || exp == "fig8" || exp == "fig9"
	rep := &experiment.Report{Scale: scale}

	wireCodec, codecName, err := parseCodec(o.codec)
	if err != nil {
		return err
	}

	// A committed BENCH_*.json claiming to be "commit X" while the tree had
	// uncommitted edits is a corrupted trajectory point. Refuse up front —
	// before any long experiment runs — unless the caller opts in.
	if jsonPath != "" {
		rep.Meta = experiment.NewRunMeta()
		rep.Meta.Codec = codecName
		if rep.Meta.Dirty && !o.allowDirty {
			return fmt.Errorf("-json refused: working tree is dirty, so the report would not be " +
				"attributable to a commit; commit first or pass -allow-dirty")
		}
	}

	var m *experiment.Matrix
	if needMatrix {
		fmt.Fprintf(out, "running the evaluation matrix at scale %.2f (this replays all four traces through all systems)...\n\n", scale)
		var err error
		m, err = experiment.RunMatrix(scale)
		if err != nil {
			return err
		}
		rep.AddMatrix(m)
	}

	if exp == "all" || exp == "fig1" {
		rs, err := experiment.Fig1(scale)
		if err != nil {
			return err
		}
		experiment.PrintFig1(out, rs)
		fmt.Fprintln(out)
		rep.Fig1 = rs
	}
	if exp == "all" || exp == "fig2" {
		r, err := experiment.Fig2(scale)
		if err != nil {
			return err
		}
		experiment.PrintFig2(out, r)
		fmt.Fprintln(out)
		rep.Fig2 = r
	}
	if exp == "all" || exp == "table2" {
		m.PrintTable2(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "fig8" {
		m.PrintFig8(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "fig9" {
		m.PrintFig9(out)
		fmt.Fprintln(out)
	}
	if exp == "all" || exp == "table3" {
		rs, err := experiment.Table3(iters)
		if err != nil {
			return err
		}
		experiment.PrintTable3(out, rs)
		fmt.Fprintln(out)
		rep.Table3 = rs
	}
	if exp == "all" || exp == "table4" {
		rs, err := experiment.Table4()
		if err != nil {
			return err
		}
		experiment.PrintTable4(out, rs)
		fmt.Fprintln(out)
		rep.Table4 = rs
	}
	// The chaos sweep is opt-in only (not part of "all"): its convergence
	// and duplicate-apply columns are deterministic, but the raw transport
	// counters (retries, dedup hits) depend on goroutine scheduling, which
	// would break the byte-diff determinism of the default output.
	if exp == "chaos" {
		rs, err := experiment.ChaosSweep(chaosSeeds)
		if err != nil {
			return err
		}
		experiment.PrintChaos(out, rs)
		fmt.Fprintln(out)
		rep.Chaos = rs
	}
	// The crash-storm sweep is opt-in: every-prefix crash exploration across
	// the storage failure modes plus the composed network+storage profile.
	// Coverage counters go into the report; any recovery-invariant violation
	// fails the run (unlike throughput, crash consistency is asserted).
	if exp == "crashstorm" {
		rs, err := experiment.CrashStormSweep(o.stormSeeds)
		if err != nil {
			return err
		}
		experiment.PrintCrashStorm(out, rs)
		fmt.Fprintln(out)
		rep.CrashStorm = rs
		if err := experiment.CheckCrashStorm(rs); err != nil {
			return err
		}
	}
	// The scaling sweep is likewise opt-in: it reports wall-clock throughput,
	// which varies with machine and core count, so it would break the
	// byte-diff determinism of the default output.
	if exp == "scaling" {
		counts, err := parseClients(clients)
		if err != nil {
			return err
		}
		rs, err := experiment.ScalingSweep(counts, scalingOps)
		if err != nil {
			return err
		}
		experiment.PrintScaling(out, rs)
		fmt.Fprintln(out)
		rep.Scaling = rs
	}
	// The load sweep is opt-in for the same reason, and goes further: it
	// drives real loopback TCP connections through the bounded transport,
	// striped applied log vs the 1-stripe baseline, plus the journal
	// commit-window sweep. A rung that fails to converge or sees client
	// errors fails the run; throughput itself is reported, never asserted.
	if exp == "loadsweep" {
		counts, err := parseClients(o.loadClients)
		if err != nil {
			return err
		}
		workerCmd := []string{selfExe(), loadWorkerArg}
		rs, err := experiment.LoadSweep(experiment.LoadSweepConfig{
			ClientCounts:  counts,
			TotalOps:      o.loadOps,
			GroupSize:     o.groupSize,
			WorkerCmd:     workerCmd,
			Repeat:        o.loadReps,
			Codec:         wireCodec,
			CompareCodecs: o.codecCompare,
		})
		if err != nil {
			return err
		}
		experiment.PrintLoad(out, rs)
		fmt.Fprintln(out)
		rep.Load = rs
		windows, err := parseWindows(o.commitWindows)
		if err != nil {
			return err
		}
		if len(windows) > 0 {
			cw, err := experiment.CommitWindowSweep(windows, 64, 6400, workerCmd)
			if err != nil {
				return err
			}
			experiment.PrintCommitWindows(out, cw)
			fmt.Fprintln(out)
			rep.CommitWindows = cw
		}
		if err := experiment.CheckLoad(rs); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := rep.WriteFile(jsonPath); err != nil {
			return fmt.Errorf("writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote JSON report to %s\n", jsonPath)
	}
	return nil
}

// selfExe is the path workers are spawned from: the running binary itself.
func selfExe() string {
	if exe, err := os.Executable(); err == nil {
		return exe
	}
	return os.Args[0]
}

// Command deltacfs-server runs the DeltaCFS cloud: a thin server that
// stores files, applies the incremental data clients push, and forwards
// updates to other clients sharing the namespace.
//
// Usage:
//
//	deltacfs-server [-addr :7420] [-tls] [-state state.db] [-snapshot 60s]
//
// With -state the server loads its durable state from the given file at
// startup (if present), snapshots to it periodically and on SIGINT/SIGTERM
// — the minimal durable-server design the paper leaves to future work.
// With -tls the server generates an in-memory self-signed certificate.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	useTLS := flag.Bool("tls", false, "serve TLS with a self-signed certificate")
	statePath := flag.String("state", "", "durable state file (empty = in-memory only)")
	snapshotEvery := flag.Duration("snapshot", time.Minute, "periodic snapshot interval (with -state)")
	flag.Parse()

	meter := metrics.NewCPUMeter(metrics.PC)
	srv := server.New(meter)

	if *statePath != "" {
		loaded, err := srv.LoadFile(*statePath)
		if err != nil {
			log.Fatalf("deltacfs-server: %v", err)
		}
		if loaded {
			fmt.Printf("deltacfs-server: restored state from %s (%d files)\n",
				*statePath, len(srv.Files()))
		}
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("deltacfs-server: %v", err)
	}
	if *useTLS {
		serverConf, _, err := wire.SelfSignedTLS()
		if err != nil {
			log.Fatalf("deltacfs-server: tls: %v", err)
		}
		lis = tls.NewListener(lis, serverConf)
		fmt.Printf("deltacfs-server: TLS listening on %s (self-signed)\n", lis.Addr())
	} else {
		fmt.Printf("deltacfs-server: listening on %s\n", lis.Addr())
	}

	if *statePath != "" {
		save := func(reason string) {
			if err := srv.SaveFile(*statePath); err != nil {
				log.Printf("deltacfs-server: snapshot (%s): %v", reason, err)
			}
		}
		go func() {
			for range time.Tick(*snapshotEvery) {
				save("periodic")
			}
		}()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			save("shutdown")
			lis.Close()
			os.Exit(0)
		}()
	}

	if err := wire.Serve(lis, srv); err != nil {
		log.Fatalf("deltacfs-server: %v", err)
	}
}

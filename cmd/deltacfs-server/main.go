// Command deltacfs-server runs the DeltaCFS cloud: a thin server that
// stores files, applies the incremental data clients push, and forwards
// updates to other clients sharing the namespace.
//
// Usage:
//
//	deltacfs-server [-addr :7420] [-tls] [-state state.db] [-snapshot 60s]
//	                [-journal dir] [-commit-window 5ms] [-workers N]
//
// With -state the server loads its durable state from the given file at
// startup (if present), snapshots to it periodically and on SIGINT/SIGTERM
// — the minimal durable-server design the paper leaves to future work.
// With -journal (defaults to <state>.journal when -state is set) every push
// is additionally recorded in a write-ahead journal before it is applied,
// and replayed over the snapshot at startup, so acknowledged pushes survive
// a crash between snapshots. -commit-window tunes the journal's group
// durability: pushes share one fsync per window (0 = fsync per push). The
// default comes from the benchall commit-window sweep (BENCH_6.json).
// With -tls the server generates an in-memory self-signed certificate.
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	useTLS := flag.Bool("tls", false, "serve TLS with a self-signed certificate")
	statePath := flag.String("state", "", "durable state file (empty = in-memory only)")
	snapshotEvery := flag.Duration("snapshot", time.Minute, "periodic snapshot interval (with -state)")
	journalDir := flag.String("journal", "", "push journal directory (default <state>.journal; \"off\" disables)")
	commitWindow := flag.Duration("commit-window", kvstore.DefaultCommitWindow,
		"journal group-commit window (0 = fsync per push)")
	workers := flag.Int("workers", 0, "connection worker pool size (0 = auto)")
	forceGob := flag.Bool("force-gob", false, "serve the legacy gob codec only (binary negotiation disabled)")
	flag.Parse()

	meter := metrics.NewCPUMeter(metrics.PC)
	srv := server.New(meter)

	if *statePath != "" {
		loaded, err := srv.LoadFile(*statePath)
		if err != nil {
			log.Fatalf("deltacfs-server: %v", err)
		}
		if loaded {
			fmt.Printf("deltacfs-server: restored state from %s (%d files)\n",
				*statePath, len(srv.Files()))
		}
	}

	// The push journal closes the snapshot durability gap: snapshot, then
	// replay everything journaled since. Replay goes through Push, so
	// batches the snapshot already applied are absorbed by the restored
	// idempotency state.
	var journal *server.Journal
	if *journalDir == "" && *statePath != "" {
		*journalDir = *statePath + ".journal"
	}
	if *journalDir != "" && *journalDir != "off" {
		j, err := server.OpenJournal(*journalDir, *commitWindow)
		if err != nil {
			log.Fatalf("deltacfs-server: %v", err)
		}
		replayed, err := j.Replay(srv)
		if err != nil {
			log.Fatalf("deltacfs-server: journal replay: %v", err)
		}
		if replayed > 0 {
			fmt.Printf("deltacfs-server: replayed %d journaled pushes\n", replayed)
		}
		srv.SetJournal(j)
		journal = j
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("deltacfs-server: %v", err)
	}
	if *useTLS {
		serverConf, _, err := wire.SelfSignedTLS()
		if err != nil {
			log.Fatalf("deltacfs-server: tls: %v", err)
		}
		lis = tls.NewListener(lis, serverConf)
		fmt.Printf("deltacfs-server: TLS listening on %s (self-signed)\n", lis.Addr())
	} else {
		fmt.Printf("deltacfs-server: listening on %s\n", lis.Addr())
	}

	if *statePath != "" {
		save := func(reason string) {
			if err := srv.SaveFile(*statePath); err != nil {
				log.Printf("deltacfs-server: snapshot (%s): %v", reason, err)
				return
			}
			// The snapshot covers every journaled push up to its boundary;
			// drop them so the journal stays short and replay stays fast.
			if journal != nil {
				if _, err := journal.TruncateSnapshotted(); err != nil {
					log.Printf("deltacfs-server: journal truncate (%s): %v", reason, err)
				}
			}
		}
		go func() {
			for range time.Tick(*snapshotEvery) {
				save("periodic")
			}
		}()
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			save("shutdown")
			if journal != nil {
				journal.Close()
			}
			lis.Close()
			os.Exit(0)
		}()
	}

	if err := wire.ServeWith(lis, srv, wire.ServeConfig{Workers: *workers, ForceGob: *forceGob}); err != nil {
		log.Fatalf("deltacfs-server: %v", err)
	}
}

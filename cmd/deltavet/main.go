// Command deltavet is the project's multichecker: it runs the four
// invariant analyzers (lockorder, blockunderlock, detreplay, errsync) over
// the packages named on the command line and exits non-zero if any
// unsuppressed finding remains. CI runs it alongside `go vet` and the
// full-module race detector:
//
//	go run ./cmd/deltavet ./...
//
// Suppression: an inline `//deltavet:allow <analyzer> <reason>` comment on
// the finding's line (or the line above) silences that analyzer there; the
// deltavet.allow file at the module root records standing per-function
// exemptions (`<analyzer> <pkgpath> <Func|Type.Method> <reason>`). Both
// require a reason — the point is a reviewable inventory of every place the
// invariants are intentionally bent, not a mute button.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/blockunderlock"
	"repro/internal/analysis/detreplay"
	"repro/internal/analysis/errsync"
	"repro/internal/analysis/lockorder"
)

// replayScope is the set of package suffixes detreplay applies to: the
// paths the chaos oracle and pipeline-equivalence tests replay bit-for-bit.
var replayScope = []string{
	"internal/rsync",
	"internal/core",
	"internal/chaos",
	"internal/server",
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is main with its environment injected so the integration test can
// drive it: returns the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deltavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowPath := fs.String("allow", "", "path to the deltavet.allow file (default: deltavet.allow at the module root, if present)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var allows []analysis.Allow
	path := *allowPath
	if path == "" {
		if root, err := moduleRoot(dir); err == nil {
			if p := filepath.Join(root, "deltavet.allow"); fileExists(p) {
				path = p
			}
		}
	}
	if path != "" {
		var err error
		allows, err = analysis.ParseAllowFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deltavet: %v\n", err)
			return 2
		}
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "deltavet: %v\n", err)
		return 2
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		as := analyzersFor(pkg.PkgPath)
		ds, err := analysis.Run(pkg, as...)
		if err != nil {
			fmt.Fprintf(stderr, "deltavet: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	kept := analysis.Suppress(pkgs, diags, allows)
	for _, d := range kept {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "deltavet: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}

// analyzersFor selects the analyzers for one package: the concurrency and
// durability checkers run everywhere; detreplay only on the replay-scoped
// paths.
func analyzersFor(pkgPath string) []*analysis.Analyzer {
	as := []*analysis.Analyzer{lockorder.Analyzer, blockunderlock.Analyzer, errsync.Analyzer}
	for _, s := range replayScope {
		if analysis.PathSuffixMatch(pkgPath, s) {
			as = append(as, detreplay.Analyzer)
			break
		}
	}
	return as
}

func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}

// Command deltavet is the project's multichecker: it runs the ten
// invariant analyzers (lockorder, blockunderlock, detreplay, errsync,
// crashsafe, wiretaint, atomicsafe, poolsafe, leakcheck, racecheck) over
// the packages named on the command line and exits non-zero if any
// unsuppressed finding remains. CI runs it alongside `go vet` and the
// full-module race detector:
//
//	go run ./cmd/deltavet ./...
//
// All named packages are loaded into ONE analysis.Program, so the
// interprocedural analyzers see the whole-tree call graph — a finding in
// package A may exist only because of a caller in package B. Packages are
// analyzed concurrently by a GOMAXPROCS-sized worker pool sharing that
// Program; findings are merged and sorted by position, so the output is
// deterministic regardless of worker scheduling.
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error, 3 the
// packages failed to load or an analyzer crashed — so CI can tell "the code
// is dirty" from "the checker never ran".
//
// With -json the findings are emitted as a JSON array on stdout (CI uploads
// this as an artifact); on a load failure -json still emits valid JSON, an
// object with a single "error" key. With -sarif the findings are emitted as
// a SARIF 2.1.0 log for code-scanning upload. The default text form
// `file:line:col: analyzer: message` is what the GitHub Actions problem
// matcher annotates. -since <git-ref> keeps only findings in files changed
// since the merge base of HEAD and that ref — the differential mode CI uses
// to annotate new findings on a PR branch without re-litigating the whole
// tree or blaming the branch for changes that landed on main after it
// forked.
//
// Suppression: an inline `//deltavet:allow <analyzer> <reason>` comment on
// the finding's line (or the line above) silences that analyzer there; the
// deltavet.allow file at the module root records standing per-function
// exemptions (`<analyzer> <pkgpath> <Func|Type.Method> <reason>`). Both
// require a reason — the point is a reviewable inventory of every place the
// invariants are intentionally bent, not a mute button. An allow entry whose
// target function no longer exists is itself reported as an `allowstale`
// finding: suppressions must not outlive the code they excuse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicsafe"
	"repro/internal/analysis/blockunderlock"
	"repro/internal/analysis/crashsafe"
	"repro/internal/analysis/detreplay"
	"repro/internal/analysis/errsync"
	"repro/internal/analysis/leakcheck"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/poolsafe"
	"repro/internal/analysis/racecheck"
	"repro/internal/analysis/wiretaint"
)

// replayScope is the set of package suffixes detreplay applies to: the
// paths the chaos oracle and pipeline-equivalence tests replay bit-for-bit.
var replayScope = []string{
	"internal/rsync",
	"internal/core",
	"internal/chaos",
	"internal/server",
}

// crashsafeScope is where the write->fsync->rename / log->sync->apply
// discipline is load-bearing: everything that persists state.
var crashsafeScope = []string{
	"internal/kvstore",
	"internal/undolog",
	"internal/server",
	"internal/integrity",
	"cmd/deltacfs-server",
}

// wiretaintScope is where wire-decoded values can reach allocations,
// slicing, or the filesystem: the codec itself plus every consumer of
// decoded messages.
var wiretaintScope = []string{
	"internal/wire",
	"internal/server",
	"internal/core",
	"internal/rsync",
	"internal/kvstore",
}

// leakcheckScope is where fds, tickers, and goroutines churn at scale: the
// bounded transport, the load harness, the chaos harness, and the server. A
// leak per accept multiplied by 10k clients is an fd-exhaustion outage.
var leakcheckScope = []string{
	"internal/wire",
	"internal/loadgen",
	"internal/chaos",
	"internal/server",
}

// racecheckScope is where shared mutable state lives behind the stripe and
// per-client locks: the sharded server (including the chunk and applied
// stores), the kvstore, the sync engine, and the transport.
var racecheckScope = []string{
	"internal/server",
	"internal/kvstore",
	"internal/core",
	"internal/wire",
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is main with its environment injected so the integration test can
// drive it: returns the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deltavet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowPath := fs.String("allow", "", "path to the deltavet.allow file (default: deltavet.allow at the module root, if present)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text lines")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	since := fs.String("since", "", "git ref: keep only findings in files changed since this ref")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "deltavet: -json and -sarif are mutually exclusive\n")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// loadFailed reports a failure to even analyze (exit 3), keeping the
	// machine-readable output shape valid for CI consumers.
	loadFailed := func(err error) int {
		fmt.Fprintf(stderr, "deltavet: %v\n", err)
		if *jsonOut {
			json.NewEncoder(stdout).Encode(map[string]string{"error": err.Error()})
		} else if *sarifOut {
			writeSARIF(stdout, nil, "", err)
		}
		return 3
	}

	var allows []analysis.Allow
	path := *allowPath
	if path == "" {
		if root, err := moduleRoot(dir); err == nil {
			if p := filepath.Join(root, "deltavet.allow"); fileExists(p) {
				path = p
			}
		}
	}
	if path != "" {
		var err error
		allows, err = analysis.ParseAllowFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "deltavet: %v\n", err)
			return 2
		}
	}

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return loadFailed(err)
	}

	// One program over everything loaded: interprocedural facts (call
	// graph, taint, blocking summaries) span the whole analyzed tree.
	prog := analysis.NewProgram(pkgs)
	diags, err := analyzeAll(prog, pkgs)
	if err != nil {
		return loadFailed(err)
	}

	kept := analysis.Suppress(pkgs, diags, allows)
	// Suppressions that outlived their target are findings themselves.
	kept = append(kept, analysis.StaleAllows(pkgs, allows)...)

	root := dir
	if r, err := moduleRoot(dir); err == nil {
		root = r
	}
	if *since != "" {
		changed, err := changedFiles(root, *since)
		if err != nil {
			fmt.Fprintf(stderr, "deltavet: -since %s: %v\n", *since, err)
			return 2
		}
		kept = filterByFiles(kept, changed, root)
	}

	switch {
	case *jsonOut:
		if err := writeJSON(stdout, kept); err != nil {
			fmt.Fprintf(stderr, "deltavet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, kept, root, nil); err != nil {
			fmt.Fprintf(stderr, "deltavet: %v\n", err)
			return 2
		}
	default:
		for _, d := range kept {
			fmt.Fprintf(stdout, "%s\n", d)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(stderr, "deltavet: %d finding(s)\n", len(kept))
		return 1
	}
	return 0
}

// analyzeAll runs every package's analyzer set over the shared program with
// a GOMAXPROCS-sized worker pool. Results are collected per package and
// merged with a position sort, so the output order is independent of worker
// scheduling. The first analyzer error wins (any error means exit 3 anyway).
func analyzeAll(prog *analysis.Program, pkgs []*analysis.Package) ([]analysis.Diagnostic, error) {
	results := make([][]analysis.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = prog.Run(pkg, analyzersFor(pkg.PkgPath)...)
		}(i, pkg)
	}
	wg.Wait()
	var diags []analysis.Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, results[i]...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// changedFiles lists the paths changed since the merge base of HEAD and
// ref, made absolute against root. Diffing the merge base — not ref
// directly — keeps a PR branch's differential run scoped to the branch's
// own commits: after main moves on, `git diff origin/main` would also
// report every file main touched since the fork point.
func changedFiles(root, ref string) (map[string]bool, error) {
	base, err := gitOutput(root, "merge-base", "HEAD", ref)
	if err != nil {
		return nil, fmt.Errorf("git merge-base HEAD %s: %w", ref, err)
	}
	out, err := gitOutput(root, "diff", "--name-only", base, "--")
	if err != nil {
		return nil, fmt.Errorf("git diff: %w", err)
	}
	set := make(map[string]bool)
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		set[filepath.Join(root, filepath.FromSlash(line))] = true
	}
	return set, nil
}

// gitOutput runs one git command in root and returns its trimmed stdout,
// folding stderr into the error for diagnostics.
func gitOutput(root string, args ...string) (string, error) {
	cmd := exec.Command("git", args...)
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("%s", strings.TrimSpace(string(ee.Stderr)))
		}
		return "", err
	}
	return strings.TrimSpace(string(out)), nil
}

// filterByFiles keeps the diagnostics whose file is in changed. Relative
// diagnostic paths resolve against root.
func filterByFiles(diags []analysis.Diagnostic, changed map[string]bool, root string) []analysis.Diagnostic {
	kept := make([]analysis.Diagnostic, 0, len(diags))
	for _, d := range diags {
		f := d.Pos.Filename
		if !filepath.IsAbs(f) {
			f = filepath.Join(root, f)
		}
		if changed[f] {
			kept = append(kept, d)
		}
	}
	return kept
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// analyzersFor selects the analyzers for one package: the concurrency,
// durability, and shared-state checkers run everywhere; detreplay,
// crashsafe, wiretaint, and leakcheck only on their scoped paths.
func analyzersFor(pkgPath string) []*analysis.Analyzer {
	as := []*analysis.Analyzer{
		lockorder.Analyzer, blockunderlock.Analyzer, errsync.Analyzer,
		atomicsafe.Analyzer, poolsafe.Analyzer,
	}
	if inScope(pkgPath, replayScope) {
		as = append(as, detreplay.Analyzer)
	}
	if inScope(pkgPath, crashsafeScope) {
		as = append(as, crashsafe.Analyzer)
	}
	if inScope(pkgPath, wiretaintScope) {
		as = append(as, wiretaint.Analyzer)
	}
	if inScope(pkgPath, leakcheckScope) {
		as = append(as, leakcheck.Analyzer)
	}
	if inScope(pkgPath, racecheckScope) {
		as = append(as, racecheck.Analyzer)
	}
	return as
}

func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if analysis.PathSuffixMatch(pkgPath, s) {
			return true
		}
	}
	return false
}

func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}

// Seeded racecheck bugs: a striped map written without its stripe lock and
// a forwarding path that skips the per-peer pushMu. The guarded accesses
// outnumber the buggy ones, so guard inference converges on the right lock
// and the findings carry its evidence (vote counts, exemplar sites, and the
// lock-set-helper witness chain).
package server

import "sync"

type raceStripe struct {
	lk   sync.RWMutex
	vals map[string]int64
}

type raceTable struct {
	stripes [16]raceStripe
}

// lockStripe is the sanctioned acquisition path for stripe locks.
//
//deltavet:lockorder-helper
func (t *raceTable) lockStripe(i int) { t.stripes[i].lk.Lock() }

//deltavet:lockorder-helper
func (t *raceTable) unlockStripe(i int) { t.stripes[i].lk.Unlock() }

func (t *raceTable) set(i int, k string, v int64) {
	t.lockStripe(i)
	t.stripes[i].vals[k] = v
	t.unlockStripe(i)
}

func (t *raceTable) get(i int, k string) int64 {
	t.stripes[i].lk.RLock()
	v := t.stripes[i].vals[k]
	t.stripes[i].lk.RUnlock()
	return v
}

func (t *raceTable) total(i int) int {
	t.stripes[i].lk.RLock()
	defer t.stripes[i].lk.RUnlock()
	return len(t.stripes[i].vals)
}

// BadStripeSkip indexes straight into the stripe map with no lock: the
// striped-map race racecheck exists to catch.
func (t *raceTable) BadStripeSkip(i int, k string, v int64) {
	t.stripes[i].vals[k] = v
}

type racePeer struct {
	pushMu  sync.Mutex
	dedup   map[uint64]bool
	pending []string
}

func (p *racePeer) enqueue(seq uint64, m string) {
	p.pushMu.Lock()
	defer p.pushMu.Unlock()
	p.dedup[seq] = true
	p.pending = append(p.pending, m)
}

func (p *racePeer) drainOne() string {
	p.pushMu.Lock()
	defer p.pushMu.Unlock()
	if len(p.pending) == 0 {
		return ""
	}
	m := p.pending[0]
	p.pending = p.pending[1:]
	return m
}

// BadForwardSkipsPushMu forwards without taking pushMu: the dedup peek is a
// tolerated dirty read, the pending append is the race.
func (p *racePeer) BadForwardSkipsPushMu(seq uint64, m string) {
	if p.dedup[seq] {
		return
	}
	p.pending = append(p.pending, m)
}

package server

import (
	"path/filepath"

	"repro/internal/storagefault"
)

// BadStorageSnapshot violates crashsafe through the storagefault layer: the
// temp file is renamed with no fsync on any path, and the rename is never
// made durable with a directory fsync. The analyzer must see fsys.Rename —
// an interface call — exactly as it sees os.Rename.
func BadStorageSnapshot(fsys storagefault.FS, dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	f, err := storagefault.Create(fsys, tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, "state"))
}

// BadStorageSyncDrop violates errsync: the Sync error through the
// storagefault File interface is discarded — the fsyncgate bug (a failed
// fsync nobody observes means the kernel marked the pages clean and the
// data is simply gone).
func BadStorageSyncDrop(f storagefault.File) {
	f.Sync()
}

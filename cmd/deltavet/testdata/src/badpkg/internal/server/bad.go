// Package server is the deltavet integration fixture: one package that
// violates all four invariants. Its path ends in internal/server so the
// suffix-scoped analyzers treat it like the real server package. It lives
// under testdata so wildcard builds skip it, but it must stay compilable —
// the driver type-checks it for real.
package server

import (
	"sync"
	"time"

	"repro/internal/kvstore"
)

type fileShard struct {
	mu    sync.RWMutex
	files map[string][]byte
}

type Server struct {
	mu     sync.Mutex
	shards []*fileShard
	ch     chan string
	kv     *kvstore.Store
}

// BadDirectShardLock violates lockorder twice over: direct write locks on
// shard mutexes, and a second shard acquired while the first is held.
func (s *Server) BadDirectShardLock() {
	s.shards[0].mu.Lock()
	s.shards[1].mu.RLock()
	s.shards[1].mu.RUnlock()
	s.shards[0].mu.Unlock()
}

// BadSendUnderLock violates blockunderlock: a channel send while s.mu is
// held via the deferred unlock.
func (s *Server) BadSendUnderLock(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v
}

// BadStamp violates detreplay: a wall-clock read on a replay-scoped path.
func (s *Server) BadStamp() int64 {
	return time.Now().UnixNano()
}

// AllowedStamp is the same violation with an inline allow; the integration
// test asserts the driver suppresses it.
func (s *Server) AllowedStamp() int64 {
	return time.Now().UnixNano() //deltavet:allow detreplay metrics-only stamp, never replayed
}

// BadList violates detreplay: map iteration order escapes into the result.
func (s *Server) BadList() []string {
	var out []string
	for p := range s.shards[0].files {
		out = append(out, p)
	}
	return out
}

// BadDropError violates errsync: a WAL write with its error discarded.
func (s *Server) BadDropError() {
	_ = s.kv.Put([]byte("k"), nil)
}

package server

import (
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// BadSnapshot violates crashsafe twice: the temp file is renamed with no
// fsync on any path, and the rename is never made durable by a directory
// fsync.
func BadSnapshot(dir string, data []byte) error {
	tmp := filepath.Join(dir, "state.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "state"))
}

// BadWireAlloc violates wiretaint: a wire-decoded size feeds an allocation
// with no bounds check.
func BadWireAlloc(n *wire.Node) []byte {
	return make([]byte, n.Size)
}

// BadDecoderSplice is a codec reader with its take-gate deleted: a
// wire-decoded extent offset slices the raw frame unchecked — the shape a
// fuzz crasher in the binary decoder takes.
func BadDecoderSplice(e *wire.Extent, frame []byte) []byte {
	return frame[e.Off:]
}

// growBuf has no wire value in sight; its finding exists only because
// BadWireForward feeds it one — reachable only interprocedurally.
func growBuf(n int) []byte {
	return make([]byte, n)
}

func BadWireForward(n *wire.Node) []byte {
	return growBuf(int(n.Size))
}

// notify does the channel send; the blockunderlock finding at the call in
// BadNotifyUnderLock exists only via the transitive blocking summary.
func (s *Server) notify(v string) {
	s.ch <- v
}

// BadNotifyUnderLock calls a blocking helper while s.mu is held.
func (s *Server) BadNotifyUnderLock(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify(v)
}

// Seeded violations of the scale-path invariants (PR 6-8 conventions):
// copy-on-write publication, pooled-buffer lifecycle, and resource release.
// The driver integration test asserts atomicsafe, poolsafe, and leakcheck
// each catch their bug here.
package server

import (
	"net"
	"sync"
	"sync/atomic"
)

type memberSet struct {
	members map[uint32]string
}

// Registry mirrors the server's lock-free sharing gate: readers Load the
// current memberSet with no lock, so a published set must never be touched.
type Registry struct {
	cur atomic.Pointer[memberSet]
}

// BadPublishThenMutate stores the fresh set and THEN inserts the member:
// a reader between the Store and the insert sees a torn membership map, and
// the map write races the lock-free readers.
func (r *Registry) BadPublishThenMutate(id uint32, name string) {
	next := &memberSet{members: make(map[uint32]string)}
	r.cur.Store(next)
	next.members[id] = name
}

// BadLoadMutate edits the shared snapshot in place instead of copying.
func (r *Registry) BadLoadMutate(id uint32) {
	cur := r.cur.Load()
	delete(cur.members, id)
}

var scratchPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// BadUseAfterPut returns the buffer to the pool and then reads it — by the
// read, a concurrent encoder may already own and be rewriting the bytes.
func BadUseAfterPut(payload []byte) byte {
	bp := scratchPool.Get().(*[]byte)
	*bp = append((*bp)[:0], payload...)
	scratchPool.Put(bp)
	return (*bp)[0]
}

// BadDialLeak drops the connection on the timeout-config path: under load
// every pass through that branch burns an fd.
func BadDialLeak(addr string, useDeadline bool) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if useDeadline {
		return nil // leaks c
	}
	return c.Close()
}

// BadForeverWorker spawns a goroutine nothing can stop.
func BadForeverWorker(work chan int) {
	go func() {
		for {
			<-work
		}
	}()
}

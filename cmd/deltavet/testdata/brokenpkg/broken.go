// Package brokenpkg fails to parse on purpose: the driver integration test
// asserts a load failure exits 3 (not 1 or 2) and that -json still emits
// valid JSON. It lives under testdata so wildcard builds never touch it.
package brokenpkg

func Broken() {
	this is not go
}

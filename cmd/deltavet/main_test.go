package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestFlagsBadFixture runs the driver over the known-bad fixture package and
// checks that every analyzer fires, the exit code is non-zero, and the one
// inline-allowed finding is suppressed.
func TestFlagsBadFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, analyzer := range []string{"lockorder", "blockunderlock", "detreplay", "errsync", "crashsafe", "wiretaint", "atomicsafe", "poolsafe", "leakcheck", "racecheck"} {
		if !strings.Contains(got, analyzer) {
			t.Errorf("no %s finding in output:\n%s", analyzer, got)
		}
	}
	// The seeded scale-path bugs: publication mutated after Store, pooled
	// buffer read after Put, conn dropped on an exit path, unstoppable worker.
	for _, msg := range []string{
		"mutation after the value was published",
		"mutation of a value loaded from atomic pointer",
		"used after it was returned to the pool",
		"resource from net.Dial is not closed on every path",
		"spawned goroutine has no termination path",
	} {
		if !strings.Contains(got, msg) {
			t.Errorf("no %q finding in output:\n%s", msg, got)
		}
	}
	// Findings that exist only through the call graph: the blocking helper
	// called under the lock, and the allocation helper fed a wire value.
	if !strings.Contains(got, "transitive callee chain") {
		t.Errorf("no interprocedural blockunderlock finding in output:\n%s", got)
	}
	if !strings.Contains(got, "wire value flows in via") {
		t.Errorf("no interprocedural wiretaint finding in output:\n%s", got)
	}
	// BadStamp and AllowedStamp both call time.Now; only BadStamp's finding
	// must survive the inline //deltavet:allow.
	if n := strings.Count(got, "time.Now reads the wall clock"); n != 1 {
		t.Errorf("time.Now findings = %d, want 1 (inline allow not honored?)\n%s", n, got)
	}
	// The storagefault layer must be recognized as a first-class source of
	// crash-ordering and durability events: BadStorageSnapshot renames a
	// temp file through the FS interface with no fsync, BadStorageSyncDrop
	// discards a File.Sync error.
	if !strings.Contains(got, "badstorage.go") || !strings.Contains(got, "temp file renamed without an fsync") {
		t.Errorf("no crashsafe finding for the storagefault temp rename:\n%s", got)
	}
	if !strings.Contains(got, "storage fsync") {
		t.Errorf("no errsync finding for the dropped storagefault Sync error:\n%s", got)
	}
	// The seeded data races: the striped-map write that skips the stripe
	// lock (guard inferred through the lock-set helper, witness chain
	// included) and the forward path that skips the per-peer pushMu.
	for _, msg := range []string{
		"write to raceStripe.vals without holding raceStripe.lk",
		"(via lockStripe",
		"write to racePeer.pending without holding racePeer.pushMu",
	} {
		if !strings.Contains(got, msg) {
			t.Errorf("no racecheck finding %q in output:\n%s", msg, got)
		}
	}
}

// TestJSONOutput checks the -json mode round-trips the same findings as a
// machine-readable array (the CI artifact format).
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output has no findings")
	}
	seen := map[string]bool{}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, analyzer := range []string{"lockorder", "blockunderlock", "detreplay", "errsync", "crashsafe", "wiretaint", "atomicsafe", "poolsafe", "leakcheck", "racecheck"} {
		if !seen[analyzer] {
			t.Errorf("no %s finding in JSON output", analyzer)
		}
	}
}

// TestLoadFailureExitCode distinguishes "the checker never ran" (exit 3)
// from "the code is dirty" (exit 1) and "bad usage" (exit 2).
func TestLoadFailureExitCode(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/brokenpkg"}, ".", &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if errb.Len() == 0 {
		t.Error("load failure produced no stderr message")
	}
}

// TestLoadFailureJSONIsValid: -json must emit parseable JSON even when the
// packages never load, so CI artifact consumers don't choke.
func TestLoadFailureJSONIsValid(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "./testdata/brokenpkg"}, ".", &out, &errb)
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstderr:\n%s", code, errb.String())
	}
	var payload struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(out.String()), &payload); err != nil {
		t.Fatalf("-json output on load failure is not valid JSON: %v\n%s", err, out.String())
	}
	if payload.Error == "" {
		t.Errorf("load-failure JSON has no error field: %s", out.String())
	}
}

// TestSARIFOutput checks the -sarif log parses and carries the same findings
// with repo-relative URIs.
func TestSARIFOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-sarif", "./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "deltavet" || len(run.Tool.Driver.Rules) == 0 {
		t.Errorf("SARIF driver metadata missing: %+v", run.Tool.Driver)
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF log has no results")
	}
	for _, r := range run.Results {
		if r.RuleID == "" || len(r.Locations) == 0 {
			t.Errorf("incomplete SARIF result: %+v", r)
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("SARIF URI not repo-relative: %s", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Errorf("SARIF result with no line: %+v", r)
		}
	}
}

// TestFilterByFiles pins the pure -since filter logic: absolute and
// root-relative diagnostic paths both resolve against the changed set.
func TestFilterByFiles(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Analyzer: "a", Pos: token.Position{Filename: "/repo/internal/wire/serve.go", Line: 1}},
		{Analyzer: "b", Pos: token.Position{Filename: "internal/server/shard.go", Line: 2}},
		{Analyzer: "c", Pos: token.Position{Filename: "/repo/internal/core/engine.go", Line: 3}},
	}
	changed := map[string]bool{
		"/repo/internal/wire/serve.go":   true,
		"/repo/internal/server/shard.go": true,
	}
	kept := filterByFiles(diags, changed, "/repo")
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2: %+v", len(kept), kept)
	}
	if kept[0].Analyzer != "a" || kept[1].Analyzer != "b" {
		t.Errorf("wrong diagnostics kept: %+v", kept)
	}
}

// TestStaleAllowEntry: an allow entry whose target function does not exist
// in a loaded, suffix-matching package must surface as an allowstale
// finding; entries for packages outside the load set must not.
func TestStaleAllowEntry(t *testing.T) {
	dir := t.TempDir()
	allow := filepath.Join(dir, "deltavet.allow")
	content := "errsync repro/cmd/deltavet/testdata/src/badpkg/internal/server NoSuchFunc this function is long gone\n" +
		"errsync repro/internal/notloaded AlsoMissing package not loaded, must not be checked\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"-allow", allow, "./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "allowstale") || !strings.Contains(got, "NoSuchFunc") {
		t.Errorf("no allowstale finding for the dead entry:\n%s", got)
	}
	if strings.Contains(got, "AlsoMissing") {
		t.Errorf("allowstale fired for a package outside the load set:\n%s", got)
	}
}

// TestCleanOnTree is the acceptance gate: the real tree, with its inline
// allows and the module-root deltavet.allow, must come back clean.
func TestCleanOnTree(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"./internal/...", "./cmd/..."}, root, &out, &errb)
	if code != 0 {
		t.Fatalf("deltavet not clean on the tree (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

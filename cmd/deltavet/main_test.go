package main

import (
	"strings"
	"testing"
)

// TestFlagsBadFixture runs the driver over the known-bad fixture package and
// checks that every analyzer fires, the exit code is non-zero, and the one
// inline-allowed finding is suppressed.
func TestFlagsBadFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, analyzer := range []string{"lockorder", "blockunderlock", "detreplay", "errsync"} {
		if !strings.Contains(got, analyzer) {
			t.Errorf("no %s finding in output:\n%s", analyzer, got)
		}
	}
	// BadStamp and AllowedStamp both call time.Now; only BadStamp's finding
	// must survive the inline //deltavet:allow.
	if n := strings.Count(got, "time.Now reads the wall clock"); n != 1 {
		t.Errorf("time.Now findings = %d, want 1 (inline allow not honored?)\n%s", n, got)
	}
}

// TestCleanOnTree is the acceptance gate: the real tree, with its inline
// allows and the module-root deltavet.allow, must come back clean.
func TestCleanOnTree(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"./internal/...", "./cmd/..."}, root, &out, &errb)
	if code != 0 {
		t.Fatalf("deltavet not clean on the tree (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFlagsBadFixture runs the driver over the known-bad fixture package and
// checks that every analyzer fires, the exit code is non-zero, and the one
// inline-allowed finding is suppressed.
func TestFlagsBadFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	for _, analyzer := range []string{"lockorder", "blockunderlock", "detreplay", "errsync", "crashsafe", "wiretaint"} {
		if !strings.Contains(got, analyzer) {
			t.Errorf("no %s finding in output:\n%s", analyzer, got)
		}
	}
	// Findings that exist only through the call graph: the blocking helper
	// called under the lock, and the allocation helper fed a wire value.
	if !strings.Contains(got, "transitive callee chain") {
		t.Errorf("no interprocedural blockunderlock finding in output:\n%s", got)
	}
	if !strings.Contains(got, "wire value flows in via") {
		t.Errorf("no interprocedural wiretaint finding in output:\n%s", got)
	}
	// BadStamp and AllowedStamp both call time.Now; only BadStamp's finding
	// must survive the inline //deltavet:allow.
	if n := strings.Count(got, "time.Now reads the wall clock"); n != 1 {
		t.Errorf("time.Now findings = %d, want 1 (inline allow not honored?)\n%s", n, got)
	}
	// The storagefault layer must be recognized as a first-class source of
	// crash-ordering and durability events: BadStorageSnapshot renames a
	// temp file through the FS interface with no fsync, BadStorageSyncDrop
	// discards a File.Sync error.
	if !strings.Contains(got, "badstorage.go") || !strings.Contains(got, "temp file renamed without an fsync") {
		t.Errorf("no crashsafe finding for the storagefault temp rename:\n%s", got)
	}
	if !strings.Contains(got, "storage fsync") {
		t.Errorf("no errsync finding for the dropped storagefault Sync error:\n%s", got)
	}
}

// TestJSONOutput checks the -json mode round-trips the same findings as a
// machine-readable array (the CI artifact format).
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "./testdata/src/badpkg/internal/server"}, ".", &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output has no findings")
	}
	seen := map[string]bool{}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete JSON finding: %+v", d)
		}
		seen[d.Analyzer] = true
	}
	for _, analyzer := range []string{"lockorder", "blockunderlock", "detreplay", "errsync", "crashsafe", "wiretaint"} {
		if !seen[analyzer] {
			t.Errorf("no %s finding in JSON output", analyzer)
		}
	}
}

// TestCleanOnTree is the acceptance gate: the real tree, with its inline
// allows and the module-root deltavet.allow, must come back clean.
func TestCleanOnTree(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	code := run([]string{"./internal/...", "./cmd/..."}, root, &out, &errb)
	if code != 0 {
		t.Fatalf("deltavet not clean on the tree (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

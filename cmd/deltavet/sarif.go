package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// SARIF 2.1.0 log shapes — just the subset code-scanning consumers read.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Results     []sarifResult     `json:"results"`
	Invocations []sarifInvocation `json:"invocations,omitempty"`
}

type sarifInvocation struct {
	ExecutionSuccessful bool   `json:"executionSuccessful"`
	ExitCodeDescription string `json:"exitCodeDescription,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits one SARIF run holding diags. URIs are relative to root so
// code-scanning can anchor annotations in the repository. A non-nil loadErr
// produces a valid log with no results and a failed invocation — the caller
// still exits 3, but the artifact stays parseable.
func writeSARIF(w io.Writer, diags []analysis.Diagnostic, root string, loadErr error) error {
	ruleSet := make(map[string]bool)
	results := make([]sarifResult, 0, len(diags))
	lines := newLineReader()
	for _, d := range diags {
		ruleSet[d.Analyzer] = true
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{
				fingerprintKey: fingerprint(d.Analyzer, uri, lines.at(d.Pos.Filename, d.Pos.Line)),
			},
		})
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: "deltavet " + id + " invariant"}})
	}
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "deltavet", Rules: rules}},
		Results: results,
	}
	if loadErr != nil {
		run.Invocations = []sarifInvocation{{ExecutionSuccessful: false, ExitCodeDescription: loadErr.Error()}}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{run},
	})
}

// fingerprintKey names the deltavet fingerprint scheme. Versioned so the
// hash inputs can change without colliding with old uploads: GitHub code
// scanning matches results across pushes by (key, value) pairs.
const fingerprintKey = "deltavetFingerprint/v1"

// fingerprint is the stable identity of one finding across pushes: the
// rule, the repo-relative path, and the (whitespace-trimmed) source line it
// points at — NOT the line number, which shifts whenever code moves above
// it, and NOT the message, which may embed line numbers of exemplar sites.
func fingerprint(rule, uri, context string) string {
	h := fnv.New64a()
	io.WriteString(h, rule)
	h.Write([]byte{0})
	io.WriteString(h, uri)
	h.Write([]byte{0})
	io.WriteString(h, context)
	return fmt.Sprintf("%016x", h.Sum64())
}

// lineReader caches file contents so each diagnosed file is read once per
// SARIF emission. Unreadable files hash an empty context — the fingerprint
// stays stable, just less collision-resistant.
type lineReader struct {
	files map[string][]string
}

func newLineReader() *lineReader { return &lineReader{files: make(map[string][]string)} }

func (r *lineReader) at(path string, line int) string {
	ls, ok := r.files[path]
	if !ok {
		ls = readLines(path)
		r.files[path] = ls
	}
	if line < 1 || line > len(ls) {
		return ""
	}
	return strings.TrimSpace(ls[line-1])
}

func readLines(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	return out
}

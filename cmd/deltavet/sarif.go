package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// SARIF 2.1.0 log shapes — just the subset code-scanning consumers read.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool           `json:"tool"`
	Results     []sarifResult       `json:"results"`
	Invocations []sarifInvocation   `json:"invocations,omitempty"`
}

type sarifInvocation struct {
	ExecutionSuccessful bool   `json:"executionSuccessful"`
	ExitCodeDescription string `json:"exitCodeDescription,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF emits one SARIF run holding diags. URIs are relative to root so
// code-scanning can anchor annotations in the repository. A non-nil loadErr
// produces a valid log with no results and a failed invocation — the caller
// still exits 3, but the artifact stays parseable.
func writeSARIF(w io.Writer, diags []analysis.Diagnostic, root string, loadErr error) error {
	ruleSet := make(map[string]bool)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ruleSet[d.Analyzer] = true
		uri := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := make([]sarifRule, 0, len(ids))
	for _, id := range ids {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: "deltavet " + id + " invariant"}})
	}
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "deltavet", Rules: rules}},
		Results: results,
	}
	if loadErr != nil {
		run.Invocations = []sarifInvocation{{ExecutionSuccessful: false, ExitCodeDescription: loadErr.Error()}}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{run},
	})
}

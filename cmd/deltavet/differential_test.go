package main

import (
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestChangedFilesDivergedBranch: -since must diff against the merge base of
// HEAD and the ref, not the ref itself — after the main branch moves on, a
// feature branch's differential set contains only the branch's own changes,
// not the files main touched since the fork point.
func TestChangedFilesDivergedBranch(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not on PATH")
	}
	dir := t.TempDir()
	git := func(args ...string) string {
		t.Helper()
		out, err := gitOutput(dir, append([]string{
			"-c", "user.email=vet@example.com", "-c", "user.name=vet",
			"-c", "commit.gpgsign=false",
		}, args...)...)
		if err != nil {
			t.Fatalf("git %v: %v", args, err)
		}
		return out
	}
	write := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	git("init", "-q")
	write("base.go")
	git("add", ".")
	git("commit", "-q", "-m", "base")
	mainBranch := git("rev-parse", "--abbrev-ref", "HEAD")

	git("checkout", "-q", "-b", "feature")
	write("feature.go")
	git("add", ".")
	git("commit", "-q", "-m", "feature work")

	git("checkout", "-q", mainBranch)
	write("mainonly.go")
	git("add", ".")
	git("commit", "-q", "-m", "main moved on")
	git("checkout", "-q", "feature")

	changed, err := changedFiles(dir, mainBranch)
	if err != nil {
		t.Fatalf("changedFiles: %v", err)
	}
	if !changed[filepath.Join(dir, "feature.go")] {
		t.Errorf("feature.go missing from the changed set: %v", changed)
	}
	if changed[filepath.Join(dir, "mainonly.go")] {
		t.Errorf("mainonly.go in the changed set: diffing against the ref, not the merge base")
	}
	if changed[filepath.Join(dir, "base.go")] {
		t.Errorf("unchanged base.go in the changed set: %v", changed)
	}
}

// fingerprintOf extracts the deltavet fingerprint of the single result in a
// SARIF log produced by writeSARIF.
func fingerprintOf(t *testing.T, raw string) string {
	t.Helper()
	var log struct {
		Runs []struct {
			Results []struct {
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(raw), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 1 {
		t.Fatalf("unexpected SARIF shape: %s", raw)
	}
	fp := log.Runs[0].Results[0].PartialFingerprints[fingerprintKey]
	if fp == "" {
		t.Fatalf("result has no %s fingerprint: %s", fingerprintKey, raw)
	}
	return fp
}

// TestSARIFFingerprintGolden pins the fingerprint scheme: fnv64a over
// rule + NUL + repo-relative URI + NUL + trimmed source line. The literal
// hex is the golden value — a change to the inputs or the hash shows up as
// a new fingerprint, which orphans every match code-scanning has stored, so
// it must be deliberate (and bump the fingerprintKey version).
func TestSARIFFingerprintGolden(t *testing.T) {
	const golden = "7bb4598f82250ae9"

	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "pkg"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "pkg", "file.go")
	if err := os.WriteFile(src, []byte("alpha\nbeta\n\ts.files[k] = v\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diag := analysis.Diagnostic{
		Analyzer: "racecheck",
		Pos:      token.Position{Filename: src, Line: 3, Column: 2},
		Message:  "write to state.files without holding state.mu",
	}
	var out strings.Builder
	if err := writeSARIF(&out, []analysis.Diagnostic{diag}, root, nil); err != nil {
		t.Fatal(err)
	}
	if fp := fingerprintOf(t, out.String()); fp != golden {
		t.Errorf("fingerprint = %s, want %s (scheme changed? bump %s)", fp, golden, fingerprintKey)
	}

	// Stability across code motion: shift the same line down one and point
	// the (renumbered) diagnostic at it — same rule, URI, and line content,
	// so the same fingerprint, even with a different message.
	if err := os.WriteFile(src, []byte("// moved\nalpha\nbeta\n\ts.files[k] = v\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved := diag
	moved.Pos.Line = 4
	moved.Message = "write to state.files without holding state.mu — guard inferred from 9/9 guarded accesses (e.g. file.go:99)"
	out.Reset()
	if err := writeSARIF(&out, []analysis.Diagnostic{moved}, root, nil); err != nil {
		t.Fatal(err)
	}
	if fp := fingerprintOf(t, out.String()); fp != golden {
		t.Errorf("fingerprint changed when the line moved: %s, want %s", fp, golden)
	}
}

// Command tracegen materializes the paper's workload traces into
// self-contained files (setup state plus the timed operation stream) that
// cmd/replay can run against any sync system.
//
// Usage:
//
//	tracegen -trace word -scale 0.5 -o word.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/trace"
)

func main() {
	name := flag.String("trace", "append", "trace: append|random|word|wechat")
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper dimensions)")
	out := flag.String("o", "", "output file (default <trace>.trace)")
	flag.Parse()

	var tr *trace.Trace
	switch *name {
	case "append":
		tr = trace.Append(trace.PaperAppendConfig().Scaled(*scale))
	case "random":
		tr = trace.Random(trace.PaperRandomConfig().Scaled(*scale))
	case "word":
		tr = trace.Word(trace.PaperWordConfig().Scaled(*scale))
	case "wechat":
		tr = trace.WeChat(trace.PaperWeChatConfig().Scaled(*scale))
	default:
		log.Fatalf("tracegen: unknown trace %q", *name)
	}

	path := *out
	if path == "" {
		path = *name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	defer f.Close()
	if err := trace.Save(tr, f); err != nil {
		log.Fatalf("tracegen: save: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("tracegen: wrote %s (%s, update %d B, writes %d B, %d B on disk)\n",
		path, tr.Desc, tr.UpdateBytes, tr.WriteBytes, st.Size())
}

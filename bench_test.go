// Package-level benchmarks: one benchmark per table and figure of the
// paper's evaluation (§IV). Each benchmark replays the relevant workload
// through the relevant system(s) and reports, besides wall time, the
// deterministic measurements as custom metrics:
//
//	cpu-ticks/op      client CPU in the paper's tick unit
//	srv-ticks/op      server CPU
//	upload-MB/op      bytes sent client→cloud
//	download-MB/op    bytes sent cloud→client
//
// The trace scale defaults to 0.1 so `go test -bench .` completes quickly;
// set DELTACFS_BENCH_SCALE=1.0 to reproduce the paper's full dimensions
// (cmd/benchall does the same and prints the assembled tables).
package deltacfs_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func benchScale() float64 {
	if s := os.Getenv("DELTACFS_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

// benchTrace runs one (system, trace, platform) cell and reports metrics.
func benchTrace(b *testing.B, sys experiment.System, mk func(scale float64) *trace.Trace, p metrics.Platform) {
	b.Helper()
	scale := benchScale()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunTrace(sys, mk(scale), p)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.ClientTicks), "cpu-ticks/op")
	b.ReportMetric(float64(last.ServerTicks), "srv-ticks/op")
	b.ReportMetric(last.UploadMB, "upload-MB/op")
	b.ReportMetric(last.DownloadMB, "download-MB/op")
}

var paperTraces = map[string]func(scale float64) *trace.Trace{
	"Append": func(s float64) *trace.Trace { return trace.Append(trace.PaperAppendConfig().Scaled(s)) },
	"Random": func(s float64) *trace.Trace { return trace.Random(trace.PaperRandomConfig().Scaled(s)) },
	"Word":   func(s float64) *trace.Trace { return trace.Word(trace.PaperWordConfig().Scaled(s)) },
	"WeChat": func(s float64) *trace.Trace { return trace.WeChat(trace.PaperWeChatConfig().Scaled(s)) },
}

var traceBenchOrder = []string{"Append", "Random", "Word", "WeChat"}

// BenchmarkTable2Fig8 covers the paper's Table II (CPU) and Fig 8 (network):
// both are measured in the same replay, exactly as in the paper. One
// sub-benchmark per (trace, system) cell on the PC platform.
func BenchmarkTable2Fig8(b *testing.B) {
	for _, tn := range traceBenchOrder {
		for _, sys := range experiment.PCSystems {
			b.Run(fmt.Sprintf("%s/%s", tn, sys), func(b *testing.B) {
				benchTrace(b, sys, paperTraces[tn], metrics.PC)
			})
		}
	}
}

// BenchmarkTable2MobileFig9 covers Table II's mobile rows and Fig 9: the
// mobile systems over the four traces.
func BenchmarkTable2MobileFig9(b *testing.B) {
	for _, tn := range traceBenchOrder {
		for _, sys := range experiment.MobileSystems {
			b.Run(fmt.Sprintf("%s/%s", tn, sys), func(b *testing.B) {
				benchTrace(b, sys, paperTraces[tn], metrics.Mobile)
			})
		}
	}
}

// BenchmarkFig1 covers the motivation figure: Dropbox vs Seafile client
// resource consumption on the Fig 1 Word and SQLite workloads.
func BenchmarkFig1(b *testing.B) {
	workloads := map[string]func(scale float64) *trace.Trace{
		"WordSaves": func(s float64) *trace.Trace { return trace.Word(trace.Fig1WordConfig().Scaled(s)) },
		"SQLite":    func(s float64) *trace.Trace { return trace.WeChat(trace.Fig1WeChatConfig().Scaled(s)) },
	}
	for wl, mk := range workloads {
		for _, sys := range []experiment.System{experiment.SysDropbox, experiment.SysSeafile} {
			b.Run(fmt.Sprintf("%s/%s", wl, sys), func(b *testing.B) {
				benchTrace(b, sys, mk, metrics.PC)
			})
		}
	}
}

// BenchmarkFig2 covers the Dropsync/WeChat mobile motivation measurement.
func BenchmarkFig2(b *testing.B) {
	scale := benchScale()
	var last *experiment.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig2(scale)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.TUE, "TUE/op")
	b.ReportMetric(last.UploadMB, "upload-MB/op")
	b.ReportMetric(float64(last.Ticks), "cpu-ticks/op")
}

// BenchmarkTable3 covers the microbenchmark throughput table: one
// sub-benchmark per (personality, configuration) cell, reporting the
// simulated-disk throughput the table prints.
func BenchmarkTable3(b *testing.B) {
	iters := 500
	if benchScale() >= 1.0 {
		iters = 2000
	}
	for _, name := range []string{"Fileserver", "Varmail", "Webserver"} {
		for _, cfg := range experiment.FSConfigs {
			b.Run(fmt.Sprintf("%s/%s", name, cfg), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					r, err := experiment.Table3Cell(name, cfg, iters)
					if err != nil {
						b.Fatal(err)
					}
					mbps = r.MBps
				}
				b.ReportMetric(mbps, "MBps/op")
			})
		}
	}
}

// BenchmarkTable4 covers the reliability tests: the full scenario suite per
// iteration, with a correctness check on the expected outcomes.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiment.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if r.System == experiment.SysDeltaCFS &&
				(r.Corrupted != "detect" || r.Inconsistent != "detect" || r.Causal != "Y") {
				b.Fatalf("DeltaCFS reliability regressed: %+v", r)
			}
		}
	}
}
